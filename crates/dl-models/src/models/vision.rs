//! U-Net (fastMRI), ResNet (ImageNet) and ViT (ImageNet).

use deepcontext_core::TimeNs;
use dl_framework::{DataLoaderConfig, FrameworkError, Op, OpKind};

use super::{attention, conv_block, image_input, linear, loss, mlp, optimizer_step, NormKind};
use crate::{ModelCtx, Workload, WorkloadOptions};

/// U-Net on fastMRI-like MRI slices: the layout-conversion (§6.2),
/// data-loader (§6.4) and CTA-size (§6.5) case-study workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct UNet;

impl UNet {
    const CHANNELS: [usize; 4] = [16, 32, 64, 128];
}

impl Workload for UNet {
    fn name(&self) -> &'static str {
        "unet"
    }

    fn dataset(&self) -> &'static str {
        "fastmri"
    }

    fn training(&self) -> bool {
        true
    }

    fn param_bytes(&self) -> u64 {
        // Conv stacks over the channel pyramid.
        let mut params = 0usize;
        let mut c_in = 1;
        for c in Self::CHANNELS {
            params += c_in * c * 9 + c * c * 9;
            c_in = c;
        }
        (params * 2 * 4) as u64
    }

    fn dataloader(&self, opts: &WorkloadOptions) -> Option<DataLoaderConfig> {
        // The §6.4 bug: the worker count is hard-coded (16) regardless of
        // the node's 6 physical cores.
        Some(DataLoaderConfig {
            num_workers: opts.dataloader_workers,
            physical_cores: opts.physical_cores,
            per_item_cpu: TimeNs::from_us(600),
            items_per_batch: 48,
            first_batch_disk: TimeNs::from_ms(20),
            python_context: ("input_pipeline.py".into(), 88, "data_selection".into()),
        })
    }

    fn iteration(&self, ctx: &mut ModelCtx<'_>) -> Result<(), FrameworkError> {
        let _model = ctx.scope("unet.py", 14, "forward");
        let mut x = image_input(ctx, [2 * ctx.opts.scale, 1, 96, 96]);

        // Encoder: double conv + pool per level.
        let mut skips = Vec::new();
        for (level, channels) in Self::CHANNELS.into_iter().enumerate() {
            let _scope = ctx.scope("unet.py", 30 + level as u32, "down_block");
            x = conv_block(ctx, &x, channels, NormKind::Instance)?;
            x = conv_block(ctx, &x, channels, NormKind::Instance)?;
            skips.push(x.clone());
            x = ctx.op(Op::new(OpKind::MaxPool2d), &[x])?;
        }

        // Decoder: upsample + concat skip + double conv per level.
        for (level, channels) in Self::CHANNELS.into_iter().enumerate().rev() {
            let _scope = ctx.scope("unet.py", 60 + level as u32, "up_block");
            x = ctx.op(Op::new(OpKind::Upsample2d), &[x])?;
            let skip = &skips[level];
            let cat_shape = vec![
                x.shape[0],
                x.shape[1] + skip.shape[1],
                x.shape[2],
                x.shape[3],
            ];
            x = ctx.op(
                Op::new(OpKind::Concat).with_out_shape(cat_shape),
                &[x, skip.clone()],
            )?;
            x = conv_block(ctx, &x, channels, NormKind::Instance)?;
            x = conv_block(ctx, &x, channels, NormKind::Instance)?;
        }

        // Reconstruction head + L1-ish loss.
        let out = {
            let _scope = ctx.scope("unet.py", 92, "head");
            ctx.op(
                Op::new(OpKind::Conv2d).with_weight([1, x.shape[1], 1, 1]),
                &[x],
            )?
        };
        let diff = ctx.op(Op::new(OpKind::Sub), &[out.clone(), out])?;
        {
            let _scope = ctx.scope("train.py", 58, "loss_fn");
            ctx.op(Op::new(OpKind::Mean), &[diff])?;
        }
        optimizer_step(ctx, self.param_bytes())
    }
}

/// ResNet on ImageNet-like images.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResNet;

impl Workload for ResNet {
    fn name(&self) -> &'static str {
        "resnet"
    }

    fn dataset(&self) -> &'static str {
        "imagenet"
    }

    fn training(&self) -> bool {
        true
    }

    fn param_bytes(&self) -> u64 {
        25_000_000 / 4
    }

    fn iteration(&self, ctx: &mut ModelCtx<'_>) -> Result<(), FrameworkError> {
        let _model = ctx.scope("resnet.py", 9, "forward");
        let mut x = image_input(ctx, [16 * ctx.opts.scale, 3, 64, 64]);
        {
            let _scope = ctx.scope("resnet.py", 18, "stem");
            x = conv_block(ctx, &x, 64, NormKind::Batch)?;
            x = ctx.op(Op::new(OpKind::MaxPool2d), &[x])?;
        }
        let stage_channels = [64, 128, 256, 512];
        for (stage, channels) in stage_channels.into_iter().enumerate() {
            for block in 0..2 {
                let _scope = ctx.scope("resnet.py", 30 + stage as u32, "residual_block");
                let identity = x.clone();
                x = conv_block(ctx, &x, channels, NormKind::Batch)?;
                x = conv_block(ctx, &x, channels, NormKind::Batch)?;
                if identity.shape == x.shape {
                    x = ctx.op(Op::new(OpKind::Add), &[x, identity])?;
                }
                if block == 1 && stage + 1 < stage_channels.len() {
                    x = ctx.op(Op::new(OpKind::MaxPool2d), &[x])?;
                }
            }
        }
        let pooled = {
            let _scope = ctx.scope("resnet.py", 70, "global_pool");
            ctx.op(
                Op::new(OpKind::Mean).with_out_shape([x.shape[0], x.shape[1]]),
                &[x],
            )?
        };
        let logits = linear(ctx, &pooled, 1000)?;
        loss(ctx, &logits)?;
        optimizer_step(ctx, self.param_bytes())
    }
}

/// Vision Transformer on ImageNet-like images.
#[derive(Debug, Clone, Copy, Default)]
pub struct ViT;

impl ViT {
    const LAYERS: usize = 6;
    const DIM: usize = 384;
}

impl Workload for ViT {
    fn name(&self) -> &'static str {
        "vit"
    }

    fn dataset(&self) -> &'static str {
        "imagenet"
    }

    fn training(&self) -> bool {
        true
    }

    fn param_bytes(&self) -> u64 {
        (Self::LAYERS * 12 * Self::DIM * Self::DIM * 4) as u64
    }

    fn iteration(&self, ctx: &mut ModelCtx<'_>) -> Result<(), FrameworkError> {
        let _model = ctx.scope("vit.py", 11, "forward");
        let batch = 8 * ctx.opts.scale;
        // Patch embedding: 16x16 conv.
        let images = image_input(ctx, [batch, 3, 64, 64]);
        let patches = {
            let _scope = ctx.scope("vit.py", 20, "patch_embed");
            ctx.op(
                Op::new(OpKind::Conv2d).with_weight([Self::DIM, 3, 16, 16]),
                &[images],
            )?
        };
        let tokens = ctx.op(
            Op::new(OpKind::Reshape).with_out_shape([batch, 16, Self::DIM]),
            &[patches],
        )?;
        let mut x = tokens;
        for layer in 0..Self::LAYERS {
            let _scope = ctx.scope("vit.py", 35 + layer as u32, "encoder_layer");
            let normed = ctx.op(Op::new(OpKind::LayerNorm), &[x.clone()])?;
            let attended = attention(ctx, &normed)?;
            x = ctx.op(Op::new(OpKind::Add), &[x, attended])?;
            let normed = ctx.op(Op::new(OpKind::LayerNorm), &[x.clone()])?;
            let ff = mlp(ctx, &normed, Self::DIM * 4, OpKind::Gelu)?;
            x = ctx.op(Op::new(OpKind::Add), &[x, ff])?;
        }
        let cls = ctx.op(
            Op::new(OpKind::Mean).with_out_shape([batch, Self::DIM]),
            &[x],
        )?;
        let logits = linear(ctx, &cls, 1000)?;
        loss(ctx, &logits)?;
        optimizer_step(ctx, self.param_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::testutil::smoke_eager;
    use crate::TestBed;
    use sim_gpu::DeviceSpec;

    #[test]
    fn unet_channels_last_removes_conversion_kernels_and_time() {
        // §6.2: nchwToNhwc conversions take ~15% of GPU time; storing
        // tensors channels_last removes them (54s -> 42s end to end).
        let nchw = smoke_eager(&UNet, &WorkloadOptions::default());
        let nhwc = smoke_eager(
            &UNet,
            &WorkloadOptions {
                channels_last: true,
                ..Default::default()
            },
        );
        assert!(
            nhwc.kernels < nchw.kernels,
            "channels_last must drop conversion kernels: {} vs {}",
            nhwc.kernels,
            nchw.kernels
        );
        assert!(nhwc.gpu_busy < nchw.gpu_busy);
    }

    #[test]
    fn unet_worker_fix_reduces_wall_time() {
        // §6.4: 16 workers on 6 cores -> 8 workers (54s -> 47s).
        let bed = TestBed::new(DeviceSpec::a100_sxm());
        let over = bed
            .run_eager(&UNet, &WorkloadOptions::default(), 3)
            .unwrap();
        let bed2 = TestBed::new(DeviceSpec::a100_sxm());
        let matched = bed2
            .run_eager(
                &UNet,
                &WorkloadOptions {
                    dataloader_workers: 8,
                    ..Default::default()
                },
                3,
            )
            .unwrap();
        assert!(
            matched.wall < over.wall,
            "8 workers ({}) should beat 16 ({}) on 6 cores",
            matched.wall,
            over.wall
        );
    }

    #[test]
    fn unet_is_slower_per_iteration_on_amd_default_cta() {
        // §6.5: the shared 512-thread norm template under-utilises MI250.
        let nv = TestBed::new(DeviceSpec::a100_sxm());
        let amd = TestBed::new(DeviceSpec::mi250());
        let opts = WorkloadOptions::default();
        let nv_stats = nv.run_eager(&UNet, &opts, 1).unwrap();
        let amd_stats = amd.run_eager(&UNet, &opts, 1).unwrap();
        assert!(amd_stats.gpu_busy > nv_stats.gpu_busy);
    }

    #[test]
    fn resnet_and_vit_run_and_are_compute_heavy() {
        let resnet = smoke_eager(&ResNet, &WorkloadOptions::default());
        let vit = smoke_eager(&ViT, &WorkloadOptions::default());
        assert!(resnet.kernels > 50);
        assert!(vit.kernels > 50);
        // Mean kernel time is large (compute-bound workloads).
        assert!(resnet.gpu_busy.as_nanos() / resnet.kernels > 10_000);
        assert!(vit.gpu_busy.as_nanos() / vit.kernels > 10_000);
    }
}
