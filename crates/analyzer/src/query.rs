//! Call-path search (paper §4.3, "Analysis API").
//!
//! "Each analysis starts with the call path search phase. This phase
//! traverses the calling context tree of the profiled application and
//! identifies specific semantic nodes ... as well as program structure
//! patterns ... It then applies pattern-matching rules to locate call
//! paths containing these nodes."

use deepcontext_core::{Frame, FrameKind, MetricKind, NodeId, OpPhase};

use crate::view::ProfileView;

/// Semantic node classes recognised by the search phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticClass {
    /// Forward computation operators.
    Forward,
    /// Backward computation operators.
    Backward,
    /// Loss computation (nll_loss / cross-entropy / log_softmax chains).
    Loss,
    /// Memory copy operations.
    MemoryCopy,
    /// Data-loading / input-pipeline code.
    DataLoading,
    /// Optimizer steps.
    Optimizer,
}

/// A single-frame predicate.
#[derive(Debug, Clone)]
pub enum FrameMatcher {
    /// Frame is of this kind.
    Kind(FrameKind),
    /// Frame's short label contains this substring.
    NameContains(String),
    /// Frame is an operator with exactly this name.
    OperatorNamed(String),
    /// Frame is an operator in this phase.
    Phase(OpPhase),
    /// Frame belongs to this semantic class.
    Semantic(SemanticClass),
    /// Inclusive metric sum at the node satisfies `min..`.
    MetricAtLeast(MetricKind, f64),
}

impl FrameMatcher {
    fn matches(&self, view: &ProfileView<'_>, node: NodeId) -> bool {
        let frame = view.cct().node(node).frame();
        match self {
            FrameMatcher::Kind(kind) => frame.kind() == *kind,
            FrameMatcher::NameContains(s) => view.label(node).contains(s.as_str()),
            FrameMatcher::OperatorNamed(name) => view
                .operator_name(node)
                .map(|n| n == *name)
                .unwrap_or(false),
            FrameMatcher::Phase(phase) => view.operator_phase(node) == Some(*phase),
            FrameMatcher::Semantic(class) => semantic_matches(view, node, frame, *class),
            FrameMatcher::MetricAtLeast(kind, min) => view.sum(node, *kind) >= *min,
        }
    }
}

fn semantic_matches(
    view: &ProfileView<'_>,
    node: NodeId,
    frame: &Frame,
    class: SemanticClass,
) -> bool {
    let label = view.label(node);
    match class {
        SemanticClass::Forward => view.operator_phase(node) == Some(OpPhase::Forward),
        SemanticClass::Backward => view.operator_phase(node) == Some(OpPhase::Backward),
        SemanticClass::Loss => {
            label.contains("loss") || label.contains("nll") || label.contains("cross_entropy")
        }
        SemanticClass::MemoryCopy => {
            frame.kind() == FrameKind::GpuApi && label.to_lowercase().contains("memcpy")
        }
        SemanticClass::DataLoading => {
            frame.kind() == FrameKind::Python
                && (label.contains("data") || label.contains("loader") || label.contains("input"))
        }
        SemanticClass::Optimizer => {
            label.contains("sgd") || label.contains("adam") || label.contains("optimizer")
        }
    }
}

/// A conjunction of frame predicates applied to tree nodes; the query
/// returns every node all matchers accept.
#[derive(Debug, Clone, Default)]
pub struct CallPathQuery {
    matchers: Vec<FrameMatcher>,
    along_path: Vec<FrameMatcher>,
}

impl CallPathQuery {
    /// An empty query (matches every node).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requires the node itself to satisfy `matcher`.
    pub fn node(mut self, matcher: FrameMatcher) -> Self {
        self.matchers.push(matcher);
        self
    }

    /// Requires *some ancestor or the node itself* along the call path to
    /// satisfy `matcher` (the "call paths containing these nodes" form).
    pub fn along_path(mut self, matcher: FrameMatcher) -> Self {
        self.along_path.push(matcher);
        self
    }

    /// Runs the query.
    pub fn find(&self, view: &ProfileView<'_>) -> Vec<NodeId> {
        view.cct()
            .dfs()
            .filter(|node| {
                self.matchers.iter().all(|m| m.matches(view, *node))
                    && self.along_path.iter().all(|m| {
                        view.cct()
                            .path_to_root(*node)
                            .into_iter()
                            .any(|ancestor| m.matches(view, ancestor))
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{CallingContextTree, Frame, ProfileDb, ProfileMeta};

    fn db() -> ProfileDb {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let loss = cct.insert_path(&[
            Frame::python("train.py", 9, "loss_fn", &i),
            Frame::operator("aten::nll_loss", &i),
            Frame::gpu_kernel("nll_loss_forward", "m.so", 0x10, &i),
        ]);
        cct.attribute(loss, MetricKind::GpuTime, 100.0);
        let bwd = cct.insert_path(&[
            Frame::python("train.py", 9, "loss_fn", &i),
            Frame::operator_with("aten::index", OpPhase::Backward, Some(3), &i),
            Frame::gpu_kernel("indexing_backward_kernel", "m.so", 0x20, &i),
        ]);
        cct.attribute(bwd, MetricKind::GpuTime, 900.0);
        ProfileDb::new(ProfileMeta::default(), cct)
    }

    #[test]
    fn kind_and_name_matchers() {
        let db = db();
        let v = ProfileView::new(&db);
        let kernels = CallPathQuery::new()
            .node(FrameMatcher::Kind(FrameKind::GpuKernel))
            .find(&v);
        assert_eq!(kernels.len(), 2);
        let idx = CallPathQuery::new()
            .node(FrameMatcher::NameContains("indexing_backward".into()))
            .find(&v);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn operator_and_phase_matchers() {
        let db = db();
        let v = ProfileView::new(&db);
        let bwd_ops = CallPathQuery::new()
            .node(FrameMatcher::Phase(OpPhase::Backward))
            .find(&v);
        assert_eq!(bwd_ops.len(), 1);
        assert_eq!(v.operator_name(bwd_ops[0]).unwrap(), "aten::index");
        let named = CallPathQuery::new()
            .node(FrameMatcher::OperatorNamed("aten::nll_loss".into()))
            .find(&v);
        assert_eq!(named.len(), 1);
    }

    #[test]
    fn along_path_and_metric_matchers() {
        let db = db();
        let v = ProfileView::new(&db);
        // Kernels whose path goes through the backward aten::index.
        let under_bwd = CallPathQuery::new()
            .node(FrameMatcher::Kind(FrameKind::GpuKernel))
            .along_path(FrameMatcher::Semantic(SemanticClass::Backward))
            .find(&v);
        assert_eq!(under_bwd.len(), 1);
        // Kernels with at least 500ns of GPU time.
        let heavy = CallPathQuery::new()
            .node(FrameMatcher::Kind(FrameKind::GpuKernel))
            .node(FrameMatcher::MetricAtLeast(MetricKind::GpuTime, 500.0))
            .find(&v);
        assert_eq!(heavy.len(), 1);
    }

    #[test]
    fn semantic_loss_class() {
        let db = db();
        let v = ProfileView::new(&db);
        let losses = CallPathQuery::new()
            .node(FrameMatcher::Semantic(SemanticClass::Loss))
            .find(&v);
        // loss_fn python frame, nll_loss operator, nll kernel.
        assert!(losses.len() >= 2);
    }
}
