//! Persistent profile database.
//!
//! DeepContext aggregates online, so the on-disk profile is a compact
//! calling context tree rather than a trace. The format is a line-oriented
//! text format (version-tagged) with an interned string table followed by
//! nodes in topological order; it needs no external serialization crates.
//!
//! Version 2 extends the container beyond the tree: run metadata grows
//! host / model / config identity plus the run's wall-clock window, and
//! an optional timeline section persists the recorded intervals (with
//! their own captured symbol table and the recording counters) so a
//! run's timeline survives the profiler. Version 3 adds an optional
//! incident-journal section — the run's lifecycle events (supervisor
//! transitions, quarantines, drop storms, store retries, failpoint
//! fires) with their own site-name table and conservation counters — so
//! a stored run carries its own causal incident history. Version 1 and
//! 2 files still load.

use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;

use crate::cct::{CallingContextTree, NodeId};
use crate::clock::TimeNs;
use crate::error::CoreError;
use crate::frame::Frame;
use crate::interner::{Interner, Sym};
use crate::journal::{StoredJournal, StoredJournalEvent};
use crate::metrics::{MetricKind, MetricStat, MetricStore};
use crate::timeline::{Interval, IntervalKind, StoredTimeline, TrackKey};

const MAGIC_V1: &str = "deepcontext-profile v1";
const MAGIC_V2: &str = "deepcontext-profile v2";
const MAGIC_V3: &str = "deepcontext-profile v3";

/// Metadata describing one profiling run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileMeta {
    /// Workload name (e.g. `unet-fastmri`).
    pub workload: String,
    /// Framework used (e.g. `eager` / `jit`).
    pub framework: String,
    /// Platform / device (e.g. `nvidia-a100`).
    pub platform: String,
    /// Number of profiled iterations.
    pub iterations: u64,
    /// Host the run executed on (empty when unknown) — the fleet axis
    /// cross-run queries group by.
    pub host: String,
    /// Model / model-version identity (empty when unknown).
    pub model: String,
    /// Free-form configuration fingerprint (flags, hyper-parameters;
    /// empty when unknown).
    pub config: String,
    /// Wall-clock start of the run (profiler clock domain; zero when
    /// unknown). `Profiler::finish` stamps this.
    pub started: TimeNs,
    /// Wall-clock end of the run (zero when unknown).
    pub ended: TimeNs,
    /// Free-form extra key/value pairs.
    pub extra: Vec<(String, String)>,
}

/// A complete stored profile: metadata plus the calling context tree.
///
/// # Examples
///
/// ```
/// use deepcontext_core::{CallingContextTree, Frame, MetricKind, ProfileDb, ProfileMeta};
///
/// let mut cct = CallingContextTree::new();
/// let i = cct.interner();
/// let leaf = cct.insert_path(&[Frame::operator("aten::relu", &i)]);
/// cct.attribute(leaf, MetricKind::GpuTime, 9.0);
///
/// let db = ProfileDb::new(ProfileMeta { workload: "demo".into(), ..Default::default() }, cct);
/// let mut buf = Vec::new();
/// db.save(&mut buf)?;
/// let back = ProfileDb::load(&buf[..])?;
/// assert_eq!(back.meta().workload, "demo");
/// assert_eq!(back.cct().total(MetricKind::GpuTime), 9.0);
/// # Ok::<(), deepcontext_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProfileDb {
    meta: ProfileMeta,
    cct: CallingContextTree,
    timeline: Option<StoredTimeline>,
    journal: Option<StoredJournal>,
}

impl ProfileDb {
    /// Bundles metadata with a finished tree.
    pub fn new(meta: ProfileMeta, cct: CallingContextTree) -> Self {
        ProfileDb {
            meta,
            cct,
            timeline: None,
            journal: None,
        }
    }

    /// Attaches a persisted timeline (builder form).
    pub fn with_timeline(mut self, timeline: StoredTimeline) -> Self {
        self.timeline = Some(timeline);
        self
    }

    /// Attaches a persisted incident journal (builder form).
    pub fn with_journal(mut self, journal: StoredJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Run metadata.
    pub fn meta(&self) -> &ProfileMeta {
        &self.meta
    }

    /// Mutable access to the metadata (e.g. for stamping `extra` keys
    /// onto an already-built profile).
    pub fn meta_mut(&mut self) -> &mut ProfileMeta {
        &mut self.meta
    }

    /// The calling context tree.
    pub fn cct(&self) -> &CallingContextTree {
        &self.cct
    }

    /// Mutable access to the tree (e.g. for post-load annotation).
    pub fn cct_mut(&mut self) -> &mut CallingContextTree {
        &mut self.cct
    }

    /// The persisted timeline, when the run recorded one.
    pub fn timeline(&self) -> Option<&StoredTimeline> {
        self.timeline.as_ref()
    }

    /// Sets or clears the persisted timeline.
    pub fn set_timeline(&mut self, timeline: Option<StoredTimeline>) {
        self.timeline = timeline;
    }

    /// The persisted incident journal, when the run recorded one.
    pub fn journal(&self) -> Option<&StoredJournal> {
        self.journal.as_ref()
    }

    /// Sets or clears the persisted incident journal.
    pub fn set_journal(&mut self, journal: Option<StoredJournal>) {
        self.journal = journal;
    }

    /// Consumes the database, returning its parts.
    pub fn into_parts(self) -> (ProfileMeta, CallingContextTree) {
        (self.meta, self.cct)
    }

    /// Writes the profile to `w`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Io`] if writing fails.
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), CoreError> {
        writeln!(w, "{MAGIC_V3}")?;
        writeln!(w, "meta\tworkload\t{}", escape(&self.meta.workload))?;
        writeln!(w, "meta\tframework\t{}", escape(&self.meta.framework))?;
        writeln!(w, "meta\tplatform\t{}", escape(&self.meta.platform))?;
        writeln!(w, "meta\titerations\t{}", self.meta.iterations)?;
        writeln!(w, "meta\thost\t{}", escape(&self.meta.host))?;
        writeln!(w, "meta\tmodel\t{}", escape(&self.meta.model))?;
        writeln!(w, "meta\tconfig\t{}", escape(&self.meta.config))?;
        writeln!(w, "meta\tstarted\t{}", self.meta.started.0)?;
        writeln!(w, "meta\tended\t{}", self.meta.ended.0)?;
        for (k, v) in &self.meta.extra {
            writeln!(w, "meta\textra.{}\t{}", escape(k), escape(v))?;
        }
        let strings = self.cct.interner().snapshot();
        writeln!(w, "strings\t{}", strings.len())?;
        for s in &strings {
            writeln!(w, "{}", escape(s))?;
        }
        let nodes = self.cct.nodes_raw();
        writeln!(w, "nodes\t{}", nodes.len())?;
        for node in nodes {
            let parent = match node.parent() {
                Some(p) => p.index().to_string(),
                None => "-".to_owned(),
            };
            write!(w, "{parent}\t{}", node.frame().to_record())?;
            write!(w, "\t{}", node.metrics().len())?;
            for (kind, stat) in node.metrics().iter() {
                write!(w, "\t{}\t{}", kind.to_record(), stat.to_record())?;
            }
            writeln!(w)?;
        }
        if let Some(tl) = &self.timeline {
            let (wstart, wend) = match tl.window {
                Some((s, e)) => (s.0.to_string(), e.0.to_string()),
                None => ("-".to_owned(), "-".to_owned()),
            };
            writeln!(
                w,
                "timeline\t{}\t{}\t{}\t{wstart}\t{wend}",
                tl.intervals.len(),
                tl.recorded,
                tl.dropped
            )?;
            writeln!(w, "tnames\t{}", tl.names.len())?;
            for name in &tl.names {
                writeln!(w, "{}", escape(name))?;
            }
            for iv in &tl.intervals {
                let context = match iv.context {
                    Some(n) => n.index().to_string(),
                    None => "-".to_owned(),
                };
                writeln!(
                    w,
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{context}",
                    iv.track.device,
                    iv.track.stream,
                    iv.start.0,
                    iv.end.0,
                    interval_kind_tag(iv.kind),
                    iv.name.index(),
                    iv.correlation
                )?;
            }
        }
        if let Some(j) = &self.journal {
            writeln!(
                w,
                "journal\t{}\t{}\t{}",
                j.events.len(),
                j.recorded,
                j.evicted
            )?;
            writeln!(w, "jnames\t{}", j.names.len())?;
            for name in &j.names {
                writeln!(w, "{}", escape(name))?;
            }
            for ev in &j.events {
                write!(
                    w,
                    "{}\t{}\t{}\t{}\t{}",
                    ev.seq,
                    ev.ts_ns,
                    ev.severity,
                    ev.site,
                    ev.fields.len()
                )?;
                for (k, v) in &ev.fields {
                    write!(w, "\t{}\t{}", escape(k), escape(v))?;
                }
                writeln!(w)?;
            }
        }
        writeln!(w, "end")?;
        Ok(())
    }

    /// Reads a profile previously written by [`ProfileDb::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] for malformed input and
    /// [`CoreError::Io`] for read failures.
    pub fn load<R: Read>(r: R) -> Result<Self, CoreError> {
        let mut lines = BufReader::new(r).lines();
        let mut next_line = move || -> Result<String, CoreError> {
            lines
                .next()
                .ok_or_else(|| CoreError::parse("unexpected end of profile".into()))?
                .map_err(CoreError::from)
        };

        match next_line()?.as_str() {
            MAGIC_V1 | MAGIC_V2 | MAGIC_V3 => {}
            _ => return Err(CoreError::parse("bad magic header".into())),
        }

        let mut meta = ProfileMeta::default();
        let line = loop {
            let line = next_line()?;
            if let Some(rest) = line.strip_prefix("meta\t") {
                parse_meta_line(rest, &mut meta)?;
            } else {
                break line;
            }
        };

        let count: usize = line
            .strip_prefix("strings\t")
            .ok_or_else(|| CoreError::parse("expected strings section".into()))?
            .parse()
            .map_err(|e| CoreError::parse(format!("bad string count: {e}")))?;
        let interner = Interner::new();
        for _ in 0..count {
            let s = unescape(&next_line()?)?;
            interner.intern(&s);
        }

        let line = next_line()?;
        let node_count: usize = line
            .strip_prefix("nodes\t")
            .ok_or_else(|| CoreError::parse("expected nodes section".into()))?
            .parse()
            .map_err(|e| CoreError::parse(format!("bad node count: {e}")))?;

        let mut raw = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let line = next_line()?;
            raw.push(parse_node_line(&line)?);
        }

        let line = next_line()?;
        let (timeline, line) = if let Some(rest) = line.strip_prefix("timeline\t") {
            let tl = parse_timeline_section(rest, &mut next_line)?;
            (Some(tl), next_line()?)
        } else {
            (None, line)
        };
        let (journal, line) = if let Some(rest) = line.strip_prefix("journal\t") {
            let j = parse_journal_section(rest, &mut next_line)?;
            (Some(j), next_line()?)
        } else {
            (None, line)
        };
        if line != "end" {
            return Err(CoreError::parse("missing end marker".into()));
        }

        let cct = CallingContextTree::from_raw(Arc::clone(&interner), raw)?;
        Ok(ProfileDb {
            meta,
            cct,
            timeline,
            journal,
        })
    }

    /// Reads only the header of a stored profile: magic plus the meta
    /// lines, stopping before the string table. Used by store listings
    /// to scan run metadata without paying for full deserialization.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Parse`] for malformed input and
    /// [`CoreError::Io`] for read failures.
    pub fn load_meta<R: Read>(r: R) -> Result<ProfileMeta, CoreError> {
        let mut lines = BufReader::new(r).lines();
        let mut next_line = move || -> Result<String, CoreError> {
            lines
                .next()
                .ok_or_else(|| CoreError::parse("unexpected end of profile".into()))?
                .map_err(CoreError::from)
        };
        match next_line()?.as_str() {
            MAGIC_V1 | MAGIC_V2 | MAGIC_V3 => {}
            _ => return Err(CoreError::parse("bad magic header".into())),
        }
        let mut meta = ProfileMeta::default();
        loop {
            let line = next_line()?;
            if let Some(rest) = line.strip_prefix("meta\t") {
                parse_meta_line(rest, &mut meta)?;
            } else {
                break;
            }
        }
        Ok(meta)
    }
}

fn parse_meta_line(rest: &str, meta: &mut ProfileMeta) -> Result<(), CoreError> {
    let (key, value) = rest
        .split_once('\t')
        .ok_or_else(|| CoreError::parse("malformed meta line".into()))?;
    match key {
        "workload" => meta.workload = unescape(value)?,
        "framework" => meta.framework = unescape(value)?,
        "platform" => meta.platform = unescape(value)?,
        "iterations" => {
            meta.iterations = value
                .parse()
                .map_err(|e| CoreError::parse(format!("bad iterations: {e}")))?
        }
        "host" => meta.host = unescape(value)?,
        "model" => meta.model = unescape(value)?,
        "config" => meta.config = unescape(value)?,
        "started" => {
            meta.started = TimeNs(
                value
                    .parse()
                    .map_err(|e| CoreError::parse(format!("bad started: {e}")))?,
            )
        }
        "ended" => {
            meta.ended = TimeNs(
                value
                    .parse()
                    .map_err(|e| CoreError::parse(format!("bad ended: {e}")))?,
            )
        }
        other => {
            let k = other.strip_prefix("extra.").unwrap_or(other);
            meta.extra.push((unescape(k)?, unescape(value)?));
        }
    }
    Ok(())
}

fn interval_kind_tag(kind: IntervalKind) -> &'static str {
    match kind {
        IntervalKind::Kernel => "K",
        IntervalKind::Memcpy => "M",
    }
}

fn parse_timeline_section(
    header_rest: &str,
    next_line: &mut impl FnMut() -> Result<String, CoreError>,
) -> Result<StoredTimeline, CoreError> {
    let fields: Vec<&str> = header_rest.split('\t').collect();
    if fields.len() != 5 {
        return Err(CoreError::parse("malformed timeline header".into()));
    }
    let interval_count: usize = fields[0]
        .parse()
        .map_err(|e| CoreError::parse(format!("bad interval count: {e}")))?;
    let recorded: u64 = fields[1]
        .parse()
        .map_err(|e| CoreError::parse(format!("bad recorded count: {e}")))?;
    let dropped: u64 = fields[2]
        .parse()
        .map_err(|e| CoreError::parse(format!("bad dropped count: {e}")))?;
    let window = match (fields[3], fields[4]) {
        ("-", "-") => None,
        (s, e) => Some((
            TimeNs(
                s.parse()
                    .map_err(|e| CoreError::parse(format!("bad window start: {e}")))?,
            ),
            TimeNs(
                e.parse()
                    .map_err(|e| CoreError::parse(format!("bad window end: {e}")))?,
            ),
        )),
    };

    let line = next_line()?;
    let name_count: usize = line
        .strip_prefix("tnames\t")
        .ok_or_else(|| CoreError::parse("expected tnames section".into()))?
        .parse()
        .map_err(|e| CoreError::parse(format!("bad timeline name count: {e}")))?;
    let mut names: Vec<Arc<str>> = Vec::with_capacity(name_count);
    for _ in 0..name_count {
        names.push(Arc::from(unescape(&next_line()?)?.as_str()));
    }

    let mut intervals = Vec::with_capacity(interval_count);
    for _ in 0..interval_count {
        let line = next_line()?;
        intervals.push(parse_interval_line(&line, name_count)?);
    }
    Ok(StoredTimeline {
        intervals,
        names,
        recorded,
        dropped,
        window,
    })
}

fn parse_interval_line(line: &str, name_count: usize) -> Result<Interval, CoreError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 8 {
        return Err(CoreError::parse("malformed interval line".into()));
    }
    let num = |s: &str, what: &str| -> Result<u64, CoreError> {
        s.parse()
            .map_err(|e| CoreError::parse(format!("bad interval {what}: {e}")))
    };
    let kind = match fields[4] {
        "K" => IntervalKind::Kernel,
        "M" => IntervalKind::Memcpy,
        other => return Err(CoreError::parse(format!("unknown interval kind {other:?}"))),
    };
    let name_idx = num(fields[5], "name")? as u32;
    if name_idx as usize >= name_count {
        return Err(CoreError::parse(format!(
            "interval name index {name_idx} out of range"
        )));
    }
    let context = match fields[7] {
        "-" => None,
        idx => Some(NodeId(idx.parse::<u32>().map_err(|e| {
            CoreError::parse(format!("bad interval context: {e}"))
        })?)),
    };
    Ok(Interval {
        track: TrackKey {
            device: num(fields[0], "device")? as u32,
            stream: num(fields[1], "stream")? as u32,
        },
        start: TimeNs(num(fields[2], "start")?),
        end: TimeNs(num(fields[3], "end")?),
        kind,
        name: Sym(name_idx),
        correlation: num(fields[6], "correlation")?,
        context,
    })
}

fn parse_journal_section(
    header_rest: &str,
    next_line: &mut impl FnMut() -> Result<String, CoreError>,
) -> Result<StoredJournal, CoreError> {
    let fields: Vec<&str> = header_rest.split('\t').collect();
    if fields.len() != 3 {
        return Err(CoreError::parse("malformed journal header".into()));
    }
    let event_count: usize = fields[0]
        .parse()
        .map_err(|e| CoreError::parse(format!("bad journal event count: {e}")))?;
    let recorded: u64 = fields[1]
        .parse()
        .map_err(|e| CoreError::parse(format!("bad journal recorded count: {e}")))?;
    let evicted: u64 = fields[2]
        .parse()
        .map_err(|e| CoreError::parse(format!("bad journal evicted count: {e}")))?;

    let line = next_line()?;
    let name_count: usize = line
        .strip_prefix("jnames\t")
        .ok_or_else(|| CoreError::parse("expected jnames section".into()))?
        .parse()
        .map_err(|e| CoreError::parse(format!("bad journal name count: {e}")))?;
    let mut names: Vec<Arc<str>> = Vec::with_capacity(name_count);
    for _ in 0..name_count {
        names.push(Arc::from(unescape(&next_line()?)?.as_str()));
    }

    let mut events = Vec::with_capacity(event_count);
    for _ in 0..event_count {
        let line = next_line()?;
        events.push(parse_journal_event_line(&line, name_count)?);
    }
    Ok(StoredJournal {
        events,
        names,
        recorded,
        evicted,
    })
}

fn parse_journal_event_line(
    line: &str,
    name_count: usize,
) -> Result<StoredJournalEvent, CoreError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() < 5 {
        return Err(CoreError::parse("truncated journal event line".into()));
    }
    let num = |s: &str, what: &str| -> Result<u64, CoreError> {
        s.parse()
            .map_err(|e| CoreError::parse(format!("bad journal event {what}: {e}")))
    };
    let site = num(fields[3], "site")? as u32;
    if site as usize >= name_count {
        return Err(CoreError::parse(format!(
            "journal site index {site} out of range"
        )));
    }
    let severity = num(fields[2], "severity")?;
    let severity = u8::try_from(severity)
        .map_err(|_| CoreError::parse(format!("journal severity {severity} out of range")))?;
    let field_count = num(fields[4], "field count")? as usize;
    if fields.len() != 5 + 2 * field_count {
        return Err(CoreError::parse(
            "journal event line field count mismatch".into(),
        ));
    }
    let mut kv = Vec::with_capacity(field_count);
    for i in 0..field_count {
        kv.push((
            unescape(fields[5 + 2 * i])?,
            unescape(fields[5 + 2 * i + 1])?,
        ));
    }
    Ok(StoredJournalEvent {
        seq: num(fields[0], "seq")?,
        ts_ns: num(fields[1], "timestamp")?,
        severity,
        site,
        fields: kv,
    })
}

fn frame_field_count(tag: &str) -> Result<usize, CoreError> {
    Ok(match tag {
        "R" => 1,
        "I" => 2,
        "T" => 3,
        "P" | "O" | "N" | "A" | "K" => 4,
        other => return Err(CoreError::parse(format!("unknown frame tag {other:?}"))),
    })
}

type RawNode = (Option<NodeId>, Frame, MetricStore);

fn parse_node_line(line: &str) -> Result<RawNode, CoreError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() < 2 {
        return Err(CoreError::parse("truncated node line".into()));
    }
    let parent = match fields[0] {
        "-" => None,
        idx => Some(NodeId(
            idx.parse::<u32>()
                .map_err(|e| CoreError::parse(format!("bad parent: {e}")))?,
        )),
    };
    let tag = fields[1];
    let nf = frame_field_count(tag)?;
    if fields.len() < 1 + nf + 1 {
        return Err(CoreError::parse("node line too short for frame".into()));
    }
    let frame = Frame::from_record(&fields[1..1 + nf].join("\t"))?;
    let metric_count: usize = fields[1 + nf]
        .parse()
        .map_err(|e| CoreError::parse(format!("bad metric count: {e}")))?;
    let mut metrics = MetricStore::new();
    let mut pos = 1 + nf + 1;
    for _ in 0..metric_count {
        if fields.len() < pos + 7 {
            return Err(CoreError::parse("node line too short for metrics".into()));
        }
        let kind = MetricKind::from_record(fields[pos])?;
        let stat = MetricStat::from_record_fields(fields[pos + 1..pos + 7].iter().copied())?;
        metrics.merge_stat(kind, &stat);
        pos += 7;
    }
    Ok((parent, frame, metrics))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, CoreError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(CoreError::parse(format!("bad escape \\{other:?}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::OpPhase;
    use crate::metrics::StallReason;

    fn sample_db() -> ProfileDb {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let leaf1 = cct.insert_path(&[
            Frame::python("train.py", 10, "train", &i),
            Frame::operator_with("aten::index", OpPhase::Forward, Some(1), &i),
            Frame::gpu_kernel("index_kernel", "libtorch_cuda.so", 0x44, &i),
        ]);
        let leaf2 = cct.insert_path(&[
            Frame::python("train.py", 10, "train", &i),
            Frame::operator_with("aten::index", OpPhase::Backward, Some(1), &i),
            Frame::gpu_kernel("indexing_backward_kernel", "libtorch_cuda.so", 0x55, &i),
        ]);
        cct.attribute(leaf1, MetricKind::GpuTime, 100.0);
        cct.attribute(leaf2, MetricKind::GpuTime, 900.0);
        cct.attribute(
            leaf2,
            MetricKind::Stall(StallReason::MemoryDependency),
            17.0,
        );
        cct.attribute_exclusive(leaf2, MetricKind::Warps, 64.0);
        ProfileDb::new(
            ProfileMeta {
                workload: "dlrm-small".into(),
                framework: "eager".into(),
                platform: "nvidia-a100".into(),
                iterations: 100,
                host: "node-17".into(),
                model: "dlrm-v2".into(),
                config: "batch=64".into(),
                started: TimeNs(1_000),
                ended: TimeNs(9_000),
                extra: vec![("note".into(), "tab\there".into())],
            },
            cct,
        )
    }

    fn sample_timeline() -> StoredTimeline {
        let names: Vec<Arc<str>> = vec![Arc::from("sgemm"), Arc::from("memcpy")];
        let iv = |device, stream, start, end, kind, name, correlation, context| Interval {
            track: TrackKey { device, stream },
            start: TimeNs(start),
            end: TimeNs(end),
            kind,
            name: Sym(name),
            correlation,
            context,
        };
        StoredTimeline {
            intervals: vec![
                iv(
                    0,
                    0,
                    1_100,
                    1_400,
                    IntervalKind::Kernel,
                    0,
                    1,
                    Some(NodeId(2)),
                ),
                iv(0, 1, 1_200, 1_300, IntervalKind::Memcpy, 1, 2, None),
                iv(
                    1,
                    0,
                    2_000,
                    2_500,
                    IntervalKind::Kernel,
                    0,
                    3,
                    Some(NodeId(3)),
                ),
            ],
            names,
            recorded: 5,
            dropped: 2,
            window: Some((TimeNs(1_000), TimeNs(9_000))),
        }
    }

    #[test]
    fn save_load_round_trip_preserves_everything() {
        let db = sample_db();
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let back = ProfileDb::load(&buf[..]).unwrap();

        assert_eq!(back.meta(), db.meta());
        assert_eq!(back.cct().node_count(), db.cct().node_count());
        assert_eq!(
            back.cct().total(MetricKind::GpuTime),
            db.cct().total(MetricKind::GpuTime)
        );
        // Same render implies same structure, labels and metric sums.
        assert_eq!(
            back.cct().render(MetricKind::GpuTime),
            db.cct().render(MetricKind::GpuTime)
        );
    }

    #[test]
    fn timeline_section_round_trips() {
        let db = sample_db().with_timeline(sample_timeline());
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let back = ProfileDb::load(&buf[..]).unwrap();
        let tl = back.timeline().expect("timeline survived");
        assert_eq!(tl, &sample_timeline());
        assert_eq!(tl.name_of(Sym(0)), Some("sgemm"));
        assert_eq!(tl.name_of(Sym(5)), None);
        assert_eq!(back.meta().started, TimeNs(1_000));
        assert_eq!(back.meta().ended, TimeNs(9_000));
        assert_eq!(back.meta().host, "node-17");
    }

    #[test]
    fn profile_without_timeline_loads_as_none() {
        let db = sample_db();
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        assert!(ProfileDb::load(&buf[..]).unwrap().timeline().is_none());
    }

    fn sample_journal() -> StoredJournal {
        StoredJournal {
            events: vec![
                StoredJournalEvent {
                    seq: 1,
                    ts_ns: 1_500,
                    severity: 1,
                    site: 0,
                    fields: vec![
                        ("from".into(), "Healthy".into()),
                        ("to".into(), "Degraded".into()),
                    ],
                },
                StoredJournalEvent {
                    seq: 2,
                    ts_ns: 1_700,
                    severity: 2,
                    site: 1,
                    fields: vec![("shard".into(), "3".into())],
                },
                StoredJournalEvent {
                    seq: 4,
                    ts_ns: 2_400,
                    severity: 0,
                    site: 2,
                    fields: Vec::new(),
                },
            ],
            names: vec![
                Arc::from("supervisor.transition"),
                Arc::from("shard.quarantine"),
                Arc::from("pipeline.epoch"),
            ],
            recorded: 4,
            evicted: 1,
        }
    }

    #[test]
    fn v1_and_v2_magic_still_load() {
        let db = sample_db();
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for old in [MAGIC_V1, MAGIC_V2] {
            let downgraded = text.replacen(MAGIC_V3, old, 1);
            let back = ProfileDb::load(downgraded.as_bytes()).unwrap();
            assert_eq!(back.meta(), db.meta());
            let meta = ProfileDb::load_meta(downgraded.as_bytes()).unwrap();
            assert_eq!(&meta, db.meta());
        }
    }

    #[test]
    fn journal_section_round_trips() {
        // With and without a timeline section preceding it.
        for with_timeline in [false, true] {
            let mut db = sample_db().with_journal(sample_journal());
            if with_timeline {
                db = db.with_timeline(sample_timeline());
            }
            let mut buf = Vec::new();
            db.save(&mut buf).unwrap();
            let back = ProfileDb::load(&buf[..]).unwrap();
            let j = back.journal().expect("journal survived");
            assert_eq!(j, &sample_journal());
            assert_eq!(j.recorded, j.event_count() as u64 + j.evicted);
            assert!(j.has_site("shard.quarantine"));
            assert_eq!(back.timeline().is_some(), with_timeline);
        }
    }

    #[test]
    fn profile_without_journal_loads_as_none() {
        let db = sample_db();
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        assert!(ProfileDb::load(&buf[..]).unwrap().journal().is_none());
    }

    #[test]
    fn corrupt_journal_section_errors_not_panics() {
        let db = sample_db().with_journal(sample_journal());
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let body_at = text.find("journal\t").unwrap();
        let (head, tail) = text.split_at(body_at);
        // Event referencing a site index past the captured name table.
        let bad = format!("{head}{}", tail.replacen("\t2\t1\t1\t", "\t2\t1\t9\t", 1));
        assert!(ProfileDb::load(bad.as_bytes()).is_err());
        // Field-count mismatch against the declared count.
        let bad = format!(
            "{head}{}",
            tail.replacen("\t1\tshard\t3", "\t2\tshard\t3", 1)
        );
        assert!(ProfileDb::load(bad.as_bytes()).is_err());
        // Truncation inside the journal body.
        let cut = text.find("jnames\t").unwrap() + 3;
        assert!(ProfileDb::load(&text.as_bytes()[..cut]).is_err());
    }

    #[test]
    fn load_meta_reads_header_only() {
        let db = sample_db().with_timeline(sample_timeline());
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let meta = ProfileDb::load_meta(&buf[..]).unwrap();
        assert_eq!(&meta, db.meta());
        // Header-only reads also work on inputs truncated after the meta
        // lines, which is the point: listings never parse the body.
        let text = String::from_utf8(buf).unwrap();
        let header: String = text
            .lines()
            .take_while(|l| !l.starts_with("strings\t"))
            .flat_map(|l| [l, "\n"])
            .collect();
        let meta = ProfileDb::load_meta(format!("{header}strings\t0\n").as_bytes()).unwrap();
        assert_eq!(&meta, db.meta());
    }

    #[test]
    fn corrupt_timeline_section_errors_not_panics() {
        let db = sample_db().with_timeline(sample_timeline());
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let body_at = text.find("timeline\t").unwrap();
        let (head, tail) = text.split_at(body_at);
        // Interval referencing a name index past the captured table.
        let bad = format!("{head}{}", tail.replacen("\tK\t0\t1\t", "\tK\t99\t1\t", 1));
        assert!(ProfileDb::load(bad.as_bytes()).is_err());
        // Unknown interval kind tag.
        let bad = format!("{head}{}", tail.replacen("\tK\t0\t1\t", "\tQ\t0\t1\t", 1));
        assert!(ProfileDb::load(bad.as_bytes()).is_err());
        // Truncation inside the timeline body.
        let cut = text.find("tnames\t").unwrap() + 3;
        assert!(ProfileDb::load(&text.as_bytes()[..cut]).is_err());
    }

    #[test]
    fn load_rejects_bad_magic() {
        let err = ProfileDb::load(&b"not a profile\n"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"));
        assert!(ProfileDb::load(&b"deepcontext-profile v9\n"[..]).is_err());
        assert!(ProfileDb::load_meta(&b"not a profile\n"[..]).is_err());
    }

    #[test]
    fn load_rejects_truncation() {
        let db = sample_db();
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let cut = buf.len() / 2;
        assert!(ProfileDb::load(&buf[..cut]).is_err());
    }

    #[test]
    fn escape_round_trips() {
        for s in ["plain", "with\ttab", "with\nnewline", "back\\slash", ""] {
            assert_eq!(unescape(&escape(s)).unwrap(), s);
        }
    }

    #[test]
    fn empty_tree_round_trips() {
        let db = ProfileDb::new(ProfileMeta::default(), CallingContextTree::new());
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let back = ProfileDb::load(&buf[..]).unwrap();
        assert_eq!(back.cct().node_count(), 1);
    }
}
