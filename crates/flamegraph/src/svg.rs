//! Standalone SVG renderer with frame-kind colour coding and issue
//! highlighting — the printable analogue of the WebGL view.

use deepcontext_analyzer::Severity;
use deepcontext_core::FrameKind;

use crate::graph::{FlameGraph, FlameNode};

/// SVG rendering options.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Image width in pixels.
    pub width: f64,
    /// Row height per stack level.
    pub row_height: f64,
    /// Minimum box width to render.
    pub min_box_px: f64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 1200.0,
            row_height: 18.0,
            min_box_px: 0.5,
        }
    }
}

/// Fill colour per frame kind (the GUI's colour-coded system).
fn kind_color(kind: FrameKind) -> &'static str {
    match kind {
        FrameKind::Root => "#c8c8c8",
        FrameKind::Thread => "#b0bec5",
        FrameKind::Python => "#4f9d4f",
        FrameKind::Operator => "#d98f3d",
        FrameKind::Native => "#4a7fb5",
        FrameKind::GpuApi => "#8d6cab",
        FrameKind::GpuKernel => "#c14d4d",
        FrameKind::Instruction => "#7a5c3e",
    }
}

fn issue_stroke(issues: &[(Severity, String)]) -> Option<&'static str> {
    let max = issues.iter().map(|(s, _)| *s).max()?;
    Some(match max {
        Severity::Critical => "#ff0000",
        Severity::Warning => "#ff9800",
        Severity::Info => "#2196f3",
    })
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

impl FlameGraph {
    /// Renders a standalone SVG document.
    pub fn to_svg(&self, options: &SvgOptions) -> String {
        let depth = self.root().depth();
        let height = depth as f64 * options.row_height + 24.0;
        let mut out = String::new();
        out.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
             font-family=\"monospace\" font-size=\"11\">\n",
            options.width, height
        ));
        out.push_str(&format!(
            "<text x=\"4\" y=\"14\">flame graph — metric: {}</text>\n",
            escape(&self.metric().name())
        ));
        let total = self.root().value.max(f64::MIN_POSITIVE);
        render_node(self.root(), 0.0, 0, total, options, &mut out);
        out.push_str("</svg>\n");
        out
    }
}

fn render_node(
    node: &FlameNode,
    x: f64,
    depth: usize,
    total: f64,
    options: &SvgOptions,
    out: &mut String,
) {
    let w = node.value / total * options.width;
    if w < options.min_box_px {
        return;
    }
    let y = depth as f64 * options.row_height + 20.0;
    let stroke = issue_stroke(&node.issues)
        .map(|c| format!(" stroke=\"{c}\" stroke-width=\"2\""))
        .unwrap_or_else(|| " stroke=\"#ffffff\" stroke-width=\"0.5\"".to_owned());
    let opacity = if node.hot { 1.0 } else { 0.75 };
    out.push_str(&format!(
        "<g><title>{} ({:.1}%{})</title><rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" \
         height=\"{:.2}\" fill=\"{}\" fill-opacity=\"{opacity}\"{stroke}/>",
        escape(&node.label),
        node.value / total * 100.0,
        if node.issues.is_empty() {
            ""
        } else {
            ", flagged"
        },
        x,
        y,
        w,
        options.row_height - 1.0,
        kind_color(node.kind),
    ));
    if w > 40.0 {
        let shown: String = node.label.chars().take((w / 7.0) as usize).collect();
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.2}\">{}</text>",
            x + 2.0,
            y + options.row_height - 5.0,
            escape(&shown)
        ));
    }
    out.push_str("</g>\n");
    let mut cx = x;
    for child in &node.children {
        render_node(child, cx, depth + 1, total, options, out);
        cx += child.value / total * options.width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{CallingContextTree, Frame, MetricKind};

    fn graph() -> FlameGraph {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let a = cct.insert_path(&[
            Frame::python("a.py", 1, "main", &i),
            Frame::gpu_kernel("kernel<a&b>", "m.so", 0x10, &i),
        ]);
        cct.attribute(a, MetricKind::GpuTime, 10.0);
        FlameGraph::top_down(&cct, MetricKind::GpuTime)
    }

    #[test]
    fn svg_is_well_formed_and_labelled() {
        let svg = graph().to_svg(&SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 3); // root, python, kernel
        assert!(svg.contains("gpu_time"));
        // Angle brackets in kernel names are escaped.
        assert!(svg.contains("kernel&lt;a&amp;b&gt;"));
    }

    #[test]
    fn children_are_laid_out_side_by_side() {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let a = cct.insert_path(&[Frame::gpu_kernel("k1", "m.so", 0x10, &i)]);
        let b = cct.insert_path(&[Frame::gpu_kernel("k2", "m.so", 0x20, &i)]);
        cct.attribute(a, MetricKind::GpuTime, 50.0);
        cct.attribute(b, MetricKind::GpuTime, 50.0);
        let svg = FlameGraph::top_down(&cct, MetricKind::GpuTime).to_svg(&SvgOptions::default());
        // Two 600px boxes at x=0 and x=600.
        assert!(svg.contains("x=\"0.00\""));
        assert!(svg.contains("x=\"600.00\""));
    }

    #[test]
    fn kind_colors_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in FrameKind::ALL {
            assert!(seen.insert(kind_color(kind)), "duplicate color for {kind}");
        }
    }
}
