//! Flagged performance issues.

use std::fmt;

use deepcontext_core::NodeId;

/// How serious an issue is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational finding.
    Info,
    /// Likely optimization opportunity.
    Warning,
    /// Dominant bottleneck.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warning => f.write_str("warning"),
            Severity::Critical => f.write_str("critical"),
        }
    }
}

/// One flagged issue, pointing at a calling context.
#[derive(Debug, Clone)]
pub struct Issue {
    /// The rule that raised it.
    pub rule: String,
    /// Severity.
    pub severity: Severity,
    /// The flagged tree node.
    pub node: NodeId,
    /// Rendered call path of the node.
    pub call_path: String,
    /// What was observed.
    pub message: String,
    /// Suggested optimization (the paper's "actionable optimization
    /// suggestions").
    pub suggestion: String,
    /// Supporting metric values (name, value).
    pub metrics: Vec<(String, f64)>,
    /// Sort weight within a severity class (rules use the dominant
    /// metric, e.g. seconds of GPU time).
    pub weight: f64,
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}: {}", self.severity, self.rule, self.message)?;
        writeln!(f, "  at: {}", self.call_path)?;
        if !self.suggestion.is_empty() {
            writeln!(f, "  suggestion: {}", self.suggestion)?;
        }
        for (name, value) in &self.metrics {
            writeln!(f, "  {name} = {value:.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn display_includes_everything() {
        let issue = Issue {
            rule: "hotspot".into(),
            severity: Severity::Critical,
            node: NodeId::ROOT,
            call_path: "a.py:1 > aten::conv2d".into(),
            message: "kernel takes 39.6% of GPU time".into(),
            suggestion: "replace aten::index with aten::index_select".into(),
            metrics: vec![("gpu_time".into(), 30.5e9)],
            weight: 30.5e9,
        };
        let text = issue.to_string();
        assert!(text.contains("hotspot"));
        assert!(text.contains("39.6%"));
        assert!(text.contains("index_select"));
        assert!(text.contains("gpu_time"));
    }
}
