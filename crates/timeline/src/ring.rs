//! Bounded interval storage: per-shard ring buffers behind one
//! recording facade.
//!
//! The ingestion pipeline records an interval at the moment the
//! corresponding activity record is attributed inside its home shard —
//! already serialized per shard — so the timeline mirrors that layout:
//! one [`IntervalRing`] per shard, each behind its own mutex that is
//! only ever contended by that shard's applier and by snapshots. A full
//! ring evicts under its global capacity from whichever *track* holds
//! the largest retained share, so one hot stream degrades to a bounded
//! trailing window of itself without erasing a quiet stream's history
//! (the CCT keeps the lossless aggregate view either way).

use std::collections::VecDeque;

use parking_lot::Mutex;

use deepcontext_core::{Interval, NodeId, TrackKey};

use crate::snapshot::TimelineSnapshot;
use crate::TimelineConfig;

/// A fixed-capacity interval buffer with per-track eviction fairness:
/// intervals are retained per `(device, stream)` track under one global
/// capacity, and overflow evicts the oldest entry of the *largest*
/// track. A single hot stream therefore cannibalizes only its own
/// history; a quiet stream's intervals survive as long as its share
/// stays below the hot track's.
///
/// The counters live here — plain integers updated under the ring's
/// lock, which the recording path already holds — instead of as shared
/// atomics: the tap sits inside inline attribution, and a per-interval
/// atomic RMW is measurable against the ~tens-of-nanoseconds budget the
/// recording overhead bar allows. Reads ([`TimelineSink::counters`])
/// sum over the rings on the cold stats path.
#[derive(Debug, Clone)]
pub struct IntervalRing {
    /// Per-track buffers, sorted by [`TrackKey`]. Shards see a handful
    /// of tracks (device × stream), so a sorted vec beats a map.
    tracks: Vec<TrackRing>,
    /// Total live intervals across all tracks.
    len: usize,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

#[derive(Debug, Clone)]
struct TrackRing {
    key: TrackKey,
    buf: VecDeque<Interval>,
}

impl IntervalRing {
    /// An empty ring holding at most `capacity` intervals (clamped to at
    /// least one). Storage is allocated lazily as intervals arrive.
    pub fn new(capacity: usize) -> Self {
        IntervalRing {
            tracks: Vec::new(),
            len: 0,
            capacity: capacity.max(1),
            recorded: 0,
            dropped: 0,
        }
    }

    /// Appends `interval`, evicting (and counting) the oldest entry of
    /// the largest track when the ring is at its global capacity.
    pub fn push(&mut self, interval: Interval) {
        self.recorded += 1;
        if self.len == self.capacity {
            // Evict from the track holding the most intervals. Ties
            // prefer the incoming interval's own track (so balanced
            // loads self-evict and stay balanced), then the smallest
            // key — deterministic either way. Another track only loses
            // history once it holds a strictly larger share.
            let victim = self
                .tracks
                .iter_mut()
                .max_by_key(|t| {
                    (
                        t.buf.len(),
                        t.key == interval.track,
                        std::cmp::Reverse(t.key),
                    )
                })
                .expect("capacity >= 1 and ring is full");
            victim.buf.pop_front();
            self.len -= 1;
            self.dropped += 1;
        }
        let idx = match self.tracks.binary_search_by_key(&interval.track, |t| t.key) {
            Ok(idx) => idx,
            Err(idx) => {
                self.tracks.insert(
                    idx,
                    TrackRing {
                        key: interval.track,
                        buf: VecDeque::new(),
                    },
                );
                idx
            }
        };
        self.tracks[idx].buf.push_back(interval);
        self.len += 1;
    }

    /// Live intervals: tracks in `(device, stream)` order, each track
    /// oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Interval> {
        self.tracks.iter().flat_map(|t| t.buf.iter())
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct tracks seen (including any evicted empty).
    pub fn track_count(&self) -> usize {
        self.tracks.len()
    }

    /// Live intervals retained for one track.
    pub fn track_len(&self, key: TrackKey) -> usize {
        self.tracks
            .binary_search_by_key(&key, |t| t.key)
            .map(|idx| self.tracks[idx].buf.len())
            .unwrap_or(0)
    }

    /// Intervals ever pushed (including any later evicted by overflow).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Intervals evicted by overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Approximate resident bytes (allocated storage, not capacity).
    pub fn approx_bytes(&self) -> usize {
        self.tracks
            .iter()
            .map(|t| {
                std::mem::size_of::<TrackRing>()
                    + t.buf.capacity() * std::mem::size_of::<Interval>()
            })
            .sum()
    }
}

/// Monotonic timeline-recording counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimelineCounters {
    /// Intervals recorded (including any later evicted by overflow).
    pub recorded: u64,
    /// Intervals evicted by ring overflow — the timeline analogue of the
    /// pipeline's dropped-event telemetry; surfaced through
    /// `ProfilerStats` and on every [`TimelineSnapshot`].
    pub dropped: u64,
}

/// The recording facade the ingestion pipeline writes into: one bounded
/// ring per ingestion shard; counters live inside the rings (see
/// [`IntervalRing`]) and are summed on read.
pub struct TimelineSink {
    rings: Vec<Mutex<IntervalRing>>,
    ring_capacity: usize,
}

impl TimelineSink {
    /// A sink with one ring (of `config.ring_capacity`) per shard.
    pub fn new(shards: usize, config: &TimelineConfig) -> Self {
        let capacity = config.ring_capacity.max(1);
        TimelineSink {
            rings: (0..shards.max(1))
                .map(|_| Mutex::new(IntervalRing::new(capacity)))
                .collect(),
            ring_capacity: capacity,
        }
    }

    /// Number of shard rings.
    pub fn shard_count(&self) -> usize {
        self.rings.len()
    }

    /// Per-ring interval capacity.
    pub fn ring_capacity(&self) -> usize {
        self.ring_capacity
    }

    /// Records one interval into shard `idx`'s ring. Callers serialize
    /// per shard already (the pipeline records while holding the shard's
    /// lock), so this lock is effectively uncontended outside snapshots
    /// — and the ring's own counters make this one lock acquisition the
    /// tap's entire bookkeeping (no shared atomics).
    pub fn record(&self, idx: usize, interval: Interval) {
        self.rings[idx].lock().push(interval);
    }

    /// Current counters, summed over the rings.
    pub fn counters(&self) -> TimelineCounters {
        let mut counters = TimelineCounters::default();
        for ring in &self.rings {
            let ring = ring.lock();
            counters.recorded += ring.recorded();
            counters.dropped += ring.dropped();
        }
        counters
    }

    /// Assembles the current ring contents into per-track sorted
    /// intervals, remapping each interval's shard-local context id
    /// through `remap(shard, node)` into the caller's master-tree id
    /// space (return `None` to leave the context unresolved).
    ///
    /// Callers are responsible for quiescing ingestion first (the
    /// pipeline's snapshot paths run this behind their drain barriers),
    /// which is what makes asynchronous-mode timelines deterministic at
    /// every flush.
    pub fn snapshot_with(
        &self,
        mut remap: impl FnMut(usize, NodeId) -> Option<NodeId>,
    ) -> TimelineSnapshot {
        let mut intervals = Vec::new();
        let mut counters = TimelineCounters::default();
        for (idx, ring) in self.rings.iter().enumerate() {
            let ring = ring.lock();
            counters.recorded += ring.recorded();
            counters.dropped += ring.dropped();
            intervals.extend(ring.iter().cloned().map(|mut interval| {
                interval.context = interval.context.and_then(|node| remap(idx, node));
                interval
            }));
        }
        TimelineSnapshot::from_intervals(intervals, counters)
    }

    /// Approximate resident bytes of all rings.
    pub fn approx_bytes(&self) -> usize {
        self.rings
            .iter()
            .map(|r| std::mem::size_of::<Mutex<IntervalRing>>() + r.lock().approx_bytes())
            .sum()
    }
}

impl std::fmt::Debug for TimelineSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimelineSink")
            .field("shards", &self.rings.len())
            .field("ring_capacity", &self.ring_capacity)
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{Interner, IntervalKind, TimeNs, TrackKey};
    use std::sync::{Arc, OnceLock};

    fn interval(corr: u64, start: u64, end: u64) -> Interval {
        on_track(0, 0, corr, start, end)
    }

    fn on_track(device: u32, stream: u32, corr: u64, start: u64, end: u64) -> Interval {
        static INTERNER: OnceLock<Arc<Interner>> = OnceLock::new();
        Interval {
            track: TrackKey { device, stream },
            start: TimeNs(start),
            end: TimeNs(end),
            kind: IntervalKind::Kernel,
            name: INTERNER.get_or_init(Interner::new).intern("k"),
            correlation: corr,
            context: None,
        }
    }

    #[test]
    fn ring_keeps_the_newest_and_counts_evictions() {
        let mut ring = IntervalRing::new(4);
        for corr in 1..=10u64 {
            ring.push(interval(corr, corr * 10, corr * 10 + 5));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let corrs: Vec<u64> = ring.iter().map(|iv| iv.correlation).collect();
        assert_eq!(corrs, vec![7, 8, 9, 10], "oldest-first, newest kept");
    }

    #[test]
    fn sink_counters_partition_recorded_into_kept_plus_dropped() {
        let sink = TimelineSink::new(
            2,
            &TimelineConfig {
                enabled: true,
                ring_capacity: 3,
            },
        );
        for corr in 1..=5u64 {
            sink.record(0, interval(corr, corr, corr + 1));
        }
        sink.record(1, interval(99, 1, 2));
        let counters = sink.counters();
        assert_eq!(counters.recorded, 6);
        assert_eq!(counters.dropped, 2);
        let snap = sink.snapshot_with(|_, node| Some(node));
        assert_eq!(
            snap.interval_count() as u64 + counters.dropped,
            counters.recorded,
            "kept + dropped == recorded"
        );
        assert_eq!(snap.dropped(), counters.dropped);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut ring = IntervalRing::new(0);
        ring.push(interval(1, 0, 1));
        ring.push(interval(2, 1, 2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn hot_track_cannot_evict_a_quiet_tracks_history() {
        let mut ring = IntervalRing::new(8);
        // A quiet stream records 3 intervals early...
        for corr in 1..=3u64 {
            ring.push(on_track(0, 1, corr, corr, corr + 1));
        }
        // ...then a hot stream floods the ring.
        for corr in 100..200u64 {
            ring.push(on_track(0, 0, corr, corr, corr + 1));
        }
        let quiet = TrackKey {
            device: 0,
            stream: 1,
        };
        let hot = TrackKey {
            device: 0,
            stream: 0,
        };
        // The quiet stream keeps its full history; the hot stream holds
        // the remainder of the budget as a trailing window of itself.
        assert_eq!(ring.track_len(quiet), 3);
        assert_eq!(ring.track_len(hot), 5);
        let quiet_corrs: Vec<u64> = ring
            .iter()
            .filter(|iv| iv.track == quiet)
            .map(|iv| iv.correlation)
            .collect();
        assert_eq!(quiet_corrs, vec![1, 2, 3]);
        let hot_corrs: Vec<u64> = ring
            .iter()
            .filter(|iv| iv.track == hot)
            .map(|iv| iv.correlation)
            .collect();
        assert_eq!(hot_corrs, vec![195, 196, 197, 198, 199]);
        // Exact accounting: kept + dropped == recorded.
        assert_eq!(ring.len() as u64 + ring.dropped(), ring.recorded());
        assert_eq!(ring.recorded(), 103);
    }

    #[test]
    fn balanced_tracks_converge_to_equal_shares() {
        let mut ring = IntervalRing::new(6);
        // Interleaved pushes on three tracks, far past capacity.
        for corr in 0..300u64 {
            ring.push(on_track(0, (corr % 3) as u32, corr, corr, corr + 1));
        }
        for stream in 0..3 {
            assert_eq!(ring.track_len(TrackKey { device: 0, stream }), 2);
        }
        assert_eq!(ring.len() as u64 + ring.dropped(), ring.recorded());
    }
}
