//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace ships a
//! deterministic subset of proptest's API: the [`Strategy`] trait with
//! `prop_map`, range / tuple / `vec` / `select` / bool strategies,
//! `prop_oneof!`, and the `proptest!` test macro. Each test case draws from
//! a seed derived from the test name and case index, so failures reproduce
//! exactly across runs. Shrinking is not implemented — a failing case
//! panics with the generated input's `Debug` output via the standard
//! assertion message instead, and the runner prints the failing case's
//! RNG seed to stderr. Setting `DEEPCONTEXT_PROPTEST_SEED` to a reported
//! seed (decimal or `0x` hex) re-runs exactly that case, so a CI failure
//! reproduces locally without replaying the whole case sequence.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
pub use rand::{Rng, SeedableRng};

/// The RNG handed to strategies by the runner.
pub type TestRng = SmallRng;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0usize..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Boolean strategies (`prop::bool`).
pub mod bool {
    use super::{Rng, Strategy, TestRng};

    /// A uniformly random boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The `prop::bool::ANY` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Rng, Strategy, TestRng};

    /// Strategy for `Vec`s with a length drawn from `len` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors of `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Rng, Strategy, TestRng};

    /// Strategy choosing uniformly among fixed options.
    pub struct Select<T: Clone>(Vec<T>);

    /// Selects uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0usize..self.0.len());
            self.0[idx].clone()
        }
    }
}

/// Runner internals used by the [`proptest!`] expansion.
pub mod test_runner {
    /// Environment variable that pins the runner to a single seed: set it
    /// to a failing case's reported seed (decimal or `0x`-prefixed hex)
    /// to reproduce exactly that case locally.
    pub const SEED_ENV: &str = "DEEPCONTEXT_PROPTEST_SEED";

    /// Derives the per-case RNG seed from the test name and case index.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        test_name.hash(&mut h);
        h.finish() ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Parses a seed value as written in a failure report (decimal or
    /// `0x` hex, surrounding whitespace ignored).
    pub fn parse_seed(value: &str) -> Option<u64> {
        let value = value.trim();
        if let Some(hex) = value
            .strip_prefix("0x")
            .or_else(|| value.strip_prefix("0X"))
        {
            u64::from_str_radix(hex, 16).ok()
        } else {
            value.parse().ok()
        }
    }

    /// The pinned seed from [`SEED_ENV`], if one is set and parses.
    pub fn pinned_seed() -> Option<u64> {
        std::env::var(SEED_ENV).ok().as_deref().and_then(parse_seed)
    }

    /// Runs the cases of one property: every case body executes under
    /// `catch_unwind` so a failure can report its RNG seed (and the
    /// exact re-run command) before the panic resumes. When a seed is
    /// pinned via [`SEED_ENV`], exactly one case runs with that seed.
    pub fn run_cases(test_name: &str, cases: u32, mut case_body: impl FnMut(u64)) {
        if let Some(seed) = pinned_seed() {
            eprintln!("proptest: {test_name} pinned to seed {seed:#x} via {SEED_ENV}");
            case_body(seed);
            return;
        }
        for case in 0..cases {
            let seed = case_seed(test_name, case);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                case_body(seed);
            }));
            if let Err(payload) = result {
                eprintln!(
                    "proptest: {test_name} failed at case {case}/{cases} with seed {seed:#x}; \
                     re-run just this case with {SEED_ENV}={seed:#x}"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`,
    /// `prop::sample::select`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two expressions differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::test_runner::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    config.cases,
                    |seed| {
                        let mut proptest_rng: $crate::TestRng =
                            <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(seed);
                        $(
                            let $pat = $crate::Strategy::generate(&($strategy), &mut proptest_rng);
                        )+
                        $body
                    },
                );
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in -2i32..2, f in 0.5f64..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_and_tuple_compose(v in prop::collection::vec((0u8..4, prop::bool::ANY), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (n, _b) in v {
                prop_assert!(n < 4);
            }
        }

        #[test]
        fn oneof_and_map_cover_arms(s in prop_oneof![
            (0u8..3).prop_map(|n| format!("a{n}")),
            (0u8..3).prop_map(|n| format!("b{n}")),
        ]) {
            prop_assert!(s.starts_with('a') || s.starts_with('b'));
        }

        #[test]
        fn select_picks_an_option(v in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::test_runner::case_seed("t", 5);
        let b = crate::test_runner::case_seed("t", 5);
        assert_eq!(a, b);
        assert_ne!(a, crate::test_runner::case_seed("t", 6));
    }

    #[test]
    fn parse_seed_accepts_decimal_and_hex() {
        use crate::test_runner::parse_seed;
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed(" 42\n"), Some(42));
        assert_eq!(parse_seed("0x2a"), Some(42));
        assert_eq!(parse_seed("0X2A"), Some(42));
        assert_eq!(parse_seed(&format!("{:#x}", u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_seed("not-a-seed"), None);
        assert_eq!(parse_seed(""), None);
    }

    #[test]
    fn run_cases_reports_the_failing_seed_and_resumes_the_panic() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let failing_seed = AtomicU64::new(0);
        let seen = AtomicU64::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::test_runner::run_cases("shim::explode", 16, |seed| {
                if seen.fetch_add(1, Ordering::Relaxed) == 3 {
                    failing_seed.store(seed, Ordering::Relaxed);
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "the case panic must propagate");
        assert_eq!(seen.load(Ordering::Relaxed), 4, "stops at the failure");
        // The reported seed is the deterministic per-case seed, so the
        // pinned re-run path replays the identical case.
        assert_eq!(
            failing_seed.load(Ordering::Relaxed),
            crate::test_runner::case_seed("shim::explode", 3)
        );
    }
}
