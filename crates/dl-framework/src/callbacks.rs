//! Framework interception events.
//!
//! These are the events DLMonitor's `DLMONITOR_FRAMEWORK` domain
//! intercepts (paper §4.1): individual operators (before and after),
//! compute-graph compilation start/end, and tensor memory events. Both
//! engines fire them through a shared [`CallbackRegistry`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::tensor::TensorMeta;
use deepcontext_core::OpPhase;
use sim_runtime::ThreadCtx;

/// Before or after an interception point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Before the operation runs.
    Enter,
    /// After the operation ran.
    Exit,
}

/// An operator execution event.
#[derive(Debug, Clone)]
pub struct OpEvent {
    /// Canonical operator name (e.g. `aten::matmul`).
    pub name: Arc<str>,
    /// Forward or backward instance.
    pub phase: OpPhase,
    /// Autograd sequence id (present when taping; backward instances carry
    /// their forward op's id — the association key of paper §4.1).
    pub seq_id: Option<u64>,
    /// Enter or exit.
    pub site: Site,
    /// The thread executing the operator.
    pub thread: Arc<ThreadCtx>,
    /// Operator inputs (enter only; empty on exit).
    pub inputs: Vec<TensorMeta>,
}

/// A compute-graph compilation event (JIT engine).
#[derive(Debug, Clone)]
pub enum GraphEvent {
    /// Compilation began for the named graph.
    CompileStart {
        /// Graph name.
        graph: Arc<str>,
    },
    /// Compilation finished; reports fusion statistics.
    CompileEnd {
        /// Graph name.
        graph: Arc<str>,
        /// Operators before fusion.
        original_ops: usize,
        /// Compiled (post-fusion) operators.
        compiled_ops: usize,
    },
}

/// A tensor memory event.
#[derive(Debug, Clone)]
pub enum MemEvent {
    /// Tensor storage allocated.
    Alloc {
        /// The tensor.
        tensor: TensorMeta,
        /// Device bytes.
        bytes: u64,
    },
    /// Tensor storage released.
    Free {
        /// Device bytes.
        bytes: u64,
    },
}

/// Identifier of a registered framework callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameworkCallbackId(u64);

type OpCb = Arc<dyn Fn(&OpEvent) + Send + Sync>;
type GraphCb = Arc<dyn Fn(&GraphEvent) + Send + Sync>;
type MemCb = Arc<dyn Fn(&MemEvent) + Send + Sync>;

/// Registry of framework interception callbacks, shared by both engines.
#[derive(Default)]
pub struct CallbackRegistry {
    next_id: AtomicU64,
    op: RwLock<Vec<(FrameworkCallbackId, OpCb)>>,
    graph: RwLock<Vec<(FrameworkCallbackId, GraphCb)>>,
    mem: RwLock<Vec<(FrameworkCallbackId, MemCb)>>,
}

impl CallbackRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn next(&self) -> FrameworkCallbackId {
        FrameworkCallbackId(self.next_id.fetch_add(1, Ordering::SeqCst))
    }

    /// Registers an operator callback (the `addGlobalCallback` analogue).
    pub fn on_op(&self, cb: impl Fn(&OpEvent) + Send + Sync + 'static) -> FrameworkCallbackId {
        let id = self.next();
        self.op.write().push((id, Arc::new(cb)));
        id
    }

    /// Registers a graph-compilation callback.
    pub fn on_graph(
        &self,
        cb: impl Fn(&GraphEvent) + Send + Sync + 'static,
    ) -> FrameworkCallbackId {
        let id = self.next();
        self.graph.write().push((id, Arc::new(cb)));
        id
    }

    /// Registers a memory callback.
    pub fn on_mem(&self, cb: impl Fn(&MemEvent) + Send + Sync + 'static) -> FrameworkCallbackId {
        let id = self.next();
        self.mem.write().push((id, Arc::new(cb)));
        id
    }

    /// Removes a callback of any type.
    pub fn remove(&self, id: FrameworkCallbackId) {
        self.op.write().retain(|(i, _)| *i != id);
        self.graph.write().retain(|(i, _)| *i != id);
        self.mem.write().retain(|(i, _)| *i != id);
    }

    /// Fires an operator event.
    pub fn fire_op(&self, event: &OpEvent) {
        let cbs: Vec<OpCb> = self.op.read().iter().map(|(_, c)| Arc::clone(c)).collect();
        for cb in cbs {
            cb(event);
        }
    }

    /// Fires a graph event.
    pub fn fire_graph(&self, event: &GraphEvent) {
        let cbs: Vec<GraphCb> = self
            .graph
            .read()
            .iter()
            .map(|(_, c)| Arc::clone(c))
            .collect();
        for cb in cbs {
            cb(event);
        }
    }

    /// Fires a memory event.
    pub fn fire_mem(&self, event: &MemEvent) {
        let cbs: Vec<MemCb> = self.mem.read().iter().map(|(_, c)| Arc::clone(c)).collect();
        for cb in cbs {
            cb(event);
        }
    }

    /// Number of registered op callbacks (for tests).
    pub fn op_callback_count(&self) -> usize {
        self.op.read().len()
    }
}

impl std::fmt::Debug for CallbackRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CallbackRegistry")
            .field("op", &self.op.read().len())
            .field("graph", &self.graph.read().len())
            .field("mem", &self.mem.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::ThreadRole;
    use sim_runtime::ThreadRegistry;
    use std::sync::atomic::AtomicUsize;

    fn op_event(site: Site) -> OpEvent {
        let threads = ThreadRegistry::new();
        OpEvent {
            name: Arc::from("aten::relu"),
            phase: OpPhase::Forward,
            seq_id: Some(7),
            site,
            thread: threads.spawn(ThreadRole::Main),
            inputs: vec![],
        }
    }

    #[test]
    fn op_callbacks_fire_and_remove() {
        let reg = CallbackRegistry::new();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        let id = reg.on_op(move |e| {
            assert_eq!(e.name.as_ref(), "aten::relu");
            c.fetch_add(1, Ordering::SeqCst);
        });
        reg.fire_op(&op_event(Site::Enter));
        reg.fire_op(&op_event(Site::Exit));
        assert_eq!(count.load(Ordering::SeqCst), 2);
        reg.remove(id);
        reg.fire_op(&op_event(Site::Enter));
        assert_eq!(count.load(Ordering::SeqCst), 2);
        assert_eq!(reg.op_callback_count(), 0);
    }

    #[test]
    fn graph_and_mem_callbacks_fire() {
        let reg = CallbackRegistry::new();
        let graphs = Arc::new(AtomicUsize::new(0));
        let mems = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&graphs);
        let m = Arc::clone(&mems);
        reg.on_graph(move |_| {
            g.fetch_add(1, Ordering::SeqCst);
        });
        reg.on_mem(move |_| {
            m.fetch_add(1, Ordering::SeqCst);
        });
        reg.fire_graph(&GraphEvent::CompileStart {
            graph: Arc::from("step"),
        });
        reg.fire_graph(&GraphEvent::CompileEnd {
            graph: Arc::from("step"),
            original_ops: 10,
            compiled_ops: 4,
        });
        reg.fire_mem(&MemEvent::Free { bytes: 64 });
        assert_eq!(graphs.load(Ordering::SeqCst), 2);
        assert_eq!(mems.load(Ordering::SeqCst), 1);
    }
}
