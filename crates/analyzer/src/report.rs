//! Analysis reports.

use std::fmt;

use crate::issue::{Issue, Severity};

/// The result of running an [`Analyzer`](crate::Analyzer) over a profile:
/// issues sorted by severity then weight.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    issues: Vec<Issue>,
}

impl AnalysisReport {
    pub(crate) fn new(issues: Vec<Issue>) -> Self {
        AnalysisReport { issues }
    }

    /// All issues, most severe first.
    pub fn issues(&self) -> &[Issue] {
        &self.issues
    }

    /// Issues raised by one rule.
    pub fn by_rule(&self, rule: &str) -> Vec<&Issue> {
        self.issues.iter().filter(|i| i.rule == rule).collect()
    }

    /// Issues at or above a severity.
    pub fn at_least(&self, severity: Severity) -> Vec<&Issue> {
        self.issues
            .iter()
            .filter(|i| i.severity >= severity)
            .collect()
    }

    /// Number of issues.
    pub fn len(&self) -> usize {
        self.issues.len()
    }

    /// Whether the report is clean.
    pub fn is_empty(&self) -> bool {
        self.issues.is_empty()
    }

    /// Renders a human-readable text report.
    pub fn render_text(&self) -> String {
        if self.issues.is_empty() {
            return "no performance issues detected\n".to_owned();
        }
        let mut out = format!("{} issue(s) detected\n\n", self.issues.len());
        for (idx, issue) in self.issues.iter().enumerate() {
            out.push_str(&format!("#{} {}\n", idx + 1, issue));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::NodeId;

    fn issue(rule: &str, severity: Severity, weight: f64) -> Issue {
        Issue {
            rule: rule.into(),
            severity,
            node: NodeId::ROOT,
            call_path: "root".into(),
            message: format!("{rule} issue"),
            suggestion: String::new(),
            metrics: vec![],
            weight,
        }
    }

    #[test]
    fn filters_and_rendering() {
        let report = AnalysisReport::new(vec![
            issue("hotspot", Severity::Critical, 10.0),
            issue("cpu-latency", Severity::Warning, 5.0),
            issue("hotspot", Severity::Info, 1.0),
        ]);
        assert_eq!(report.len(), 3);
        assert_eq!(report.by_rule("hotspot").len(), 2);
        assert_eq!(report.at_least(Severity::Warning).len(), 2);
        let text = report.render_text();
        assert!(text.contains("3 issue(s)"));
        assert!(text.contains("#1"));
    }

    #[test]
    fn empty_report_renders_clean() {
        let report = AnalysisReport::default();
        assert!(report.is_empty());
        assert!(report.render_text().contains("no performance issues"));
    }
}
