//! Metadata tensors.
//!
//! The profiler never needs tensor *values* — only shapes, dtypes, layouts
//! and device placement, which determine kernel work and the layout
//! conversions the §6.2 case study hinges on. [`TensorMeta`] carries
//! exactly that.

use std::fmt;

use sim_gpu::DeviceId;

/// Element data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit float.
    F32,
    /// 16-bit float.
    F16,
    /// 8-bit float (fp8 inference).
    F8,
    /// 64-bit int (indices).
    I64,
    /// 32-bit int.
    I32,
    /// Bool / mask.
    Bool,
}

impl DType {
    /// Bytes per element.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F16 => 2,
            DType::F8 | DType::Bool => 1,
            DType::I64 => 8,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::F8 => "f8",
            DType::I64 => "i64",
            DType::I32 => "i32",
            DType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// Memory layout of a 4-D activation tensor.
///
/// PyTorch defaults to `ChannelsFirst` (NCHW) while cuDNN prefers
/// `ChannelsLast` (NHWC); mismatches insert `nchwToNhwcKernel` conversions
/// (paper §6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// NCHW, the PyTorch default.
    #[default]
    ChannelsFirst,
    /// NHWC, preferred by cuDNN/MIOpen convolution kernels.
    ChannelsLast,
    /// Plain contiguous layout for non-4D tensors.
    RowMajor,
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Layout::ChannelsFirst => "channels_first",
            Layout::ChannelsLast => "channels_last",
            Layout::RowMajor => "row_major",
        };
        f.write_str(s)
    }
}

/// Shape/dtype/layout/placement description of a tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorMeta {
    /// Dimension sizes.
    pub shape: Vec<usize>,
    /// Element type.
    pub dtype: DType,
    /// Memory layout.
    pub layout: Layout,
    /// Device placement.
    pub device: DeviceId,
}

impl TensorMeta {
    /// Creates an f32, row-major tensor on device 0.
    pub fn new(shape: impl Into<Vec<usize>>) -> Self {
        TensorMeta {
            shape: shape.into(),
            dtype: DType::F32,
            layout: Layout::RowMajor,
            device: DeviceId(0),
        }
    }

    /// Sets the dtype.
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Sets the layout.
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the device.
    pub fn with_device(mut self, device: DeviceId) -> Self {
        self.device = device;
        self
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    /// Total bytes.
    pub fn bytes(&self) -> usize {
        self.numel() * self.dtype.size_bytes()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }
}

impl fmt::Display for TensorMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tensor{:?}:{}@{}({})",
            self.shape, self.dtype, self.device.0, self.layout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_bytes() {
        let t = TensorMeta::new([2, 3, 4]);
        assert_eq!(t.numel(), 24);
        assert_eq!(t.bytes(), 96);
        let h = t.clone().with_dtype(DType::F16);
        assert_eq!(h.bytes(), 48);
    }

    #[test]
    fn empty_shape_is_scalar() {
        let t = TensorMeta::new(Vec::new());
        assert_eq!(t.numel(), 1);
        assert_eq!(t.rank(), 0);
    }

    #[test]
    fn builders_set_fields() {
        let t = TensorMeta::new([1, 3, 224, 224])
            .with_dtype(DType::F16)
            .with_layout(Layout::ChannelsLast)
            .with_device(DeviceId(1));
        assert_eq!(t.dtype, DType::F16);
        assert_eq!(t.layout, Layout::ChannelsLast);
        assert_eq!(t.device, DeviceId(1));
    }

    #[test]
    fn display_is_informative() {
        let t = TensorMeta::new([4, 8]);
        let s = t.to_string();
        assert!(s.contains("4, 8"));
        assert!(s.contains("f32"));
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::F8.size_bytes(), 1);
        assert_eq!(DType::I64.size_bytes(), 8);
    }
}
