//! Emits `BENCH_pipeline.json`: producer-side enqueue cost and
//! end-to-end throughput of the asynchronous bounded-channel pipeline vs
//! inline synchronous attribution, over a coarse (kernel-records-only)
//! and a fine-grained (PC-sampling, paper §6.7) event stream — with the
//! asynchronous producer swept across thread-local `launch_batch` sizes
//! (1 = unbatched).
//!
//! Two headline numbers, both measured at the default batch size:
//! `producer_speedup` (fine-grained, target ≥ 5x — attribution itself is
//! expensive there) and `producer_speedup_coarse` (kernel-only, target
//! ≥ 2x — per-launch fixed costs dominate, which is exactly what
//! producer batching amortizes; the bar sits below the typical ~2.5-3x
//! because the tiny coarse baseline makes the ratio noisy). Zero dropped
//! events under the default `Block` policy in every scenario.
//!
//! Run from the repo root: `cargo run --release -p deepcontext-bench
//! --bin bench_pipeline`.

use std::io::Write;

use deepcontext_bench::pipeline::{
    fine_grained_stream, pipeline_matrix, telemetry_pass, PipelinePoint, BATCH_SWEEP,
    DIRECTORY_SWEEP, SHARDS,
};
use deepcontext_core::Interner;
use deepcontext_profiler::{DirectoryMapKind, DEFAULT_LAUNCH_BATCH};

const OPS: usize = 30_000;
const SAMPLES_PER_KERNEL: usize = 24;
const REPEATS: usize = 5;
// Acceptance bars `bench-check` enforces against the committed JSON.
// The coarse bar is deliberately below the typical measurement (~2.5-3x):
// the coarse sync baseline is only ~300 ns/event, so scheduler noise
// swings the ratio by over 1x run-to-run; the fine-grained bar is the
// headline gate.
const TARGET_PRODUCER_SPEEDUP: f64 = 5.0;
const TARGET_PRODUCER_SPEEDUP_COARSE: f64 = 2.0;

fn point<'a>(points: &'a [PipelinePoint], prefix: &str, suffix: &str) -> &'a PipelinePoint {
    points
        .iter()
        .find(|p| p.scenario.starts_with(prefix) && p.scenario.ends_with(suffix))
        .unwrap_or_else(|| panic!("measured scenario {prefix}*{suffix}"))
}

fn main() {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "measuring pipeline producer cost ({SHARDS} shards, {OPS} events, \
         {SAMPLES_PER_KERNEL} PC samples/kernel on the fine stream, batch sweep \
         {BATCH_SWEEP:?}, host parallelism {parallelism}, best of {REPEATS})..."
    );
    let points = pipeline_matrix(OPS, SAMPLES_PER_KERNEL, REPEATS);
    // One extra untimed pass with self-telemetry on: the measured points
    // above stay on the shipping default (telemetry off); this embed
    // lets the scoreboard watch the profiler's own vitals per commit.
    let telemetry = {
        let interner = Interner::new();
        let fine = fine_grained_stream(&interner, OPS, SAMPLES_PER_KERNEL);
        let workers = parallelism.min(SHARDS);
        telemetry_pass(&fine, &interner, workers)
    };
    let default_suffix = format!("_b{DEFAULT_LAUNCH_BATCH}");
    let coarse_sync = point(&points, "coarse_sync_inline", "");
    let fine_sync = point(&points, "fine_sync_inline", "");
    let coarse_async = point(&points, "coarse_async", &default_suffix);
    let fine_async = point(&points, "fine_async", &default_suffix);
    let dir_striped = point(&points, "coarse_directory_striped", "");
    let dir_flat = point(&points, "coarse_directory_flat", "");
    // > 1.0 means the flat open-addressing layout beats the striped
    // `Mutex<HashMap>` on this host; the compiled-in default should be
    // whichever side of 1.0 this lands on.
    let dir_flat_speedup = dir_striped.producer_ns_per_event / dir_flat.producer_ns_per_event;

    let fine_speedup = fine_sync.producer_ns_per_event / fine_async.producer_ns_per_event;
    let coarse_speedup = coarse_sync.producer_ns_per_event / coarse_async.producer_ns_per_event;
    // (The historical worker_events_per_wakeup utilization figure is no
    // longer published: the producer phase now runs against a parked
    // pool, so the whole backlog drains in ~one wakeup and the number
    // would only measure the methodology, not the pipeline.)
    let amortization = if coarse_async.counters.producer_flushes > 0 {
        coarse_async.counters.batched_events as f64 / coarse_async.counters.producer_flushes as f64
    } else {
        0.0
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"pipeline\",\n");
    json.push_str("  \"unit\": \"ns_per_event\",\n");
    json.push_str("  \"baseline\": \"inline synchronous attribution on the producer thread\",\n");
    json.push_str("  \"policy\": \"Block\",\n");
    json.push_str(&format!("  \"shards\": {SHARDS},\n"));
    json.push_str(&format!("  \"events\": {OPS},\n"));
    json.push_str(&format!(
        "  \"fine_samples_per_kernel\": {SAMPLES_PER_KERNEL},\n"
    ));
    json.push_str(&format!("  \"repeats\": {REPEATS},\n"));
    json.push_str(&format!("  \"host_parallelism\": {parallelism},\n"));
    json.push_str(&format!(
        "  \"launch_batch_sweep\": [{}],\n",
        BATCH_SWEEP
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"launch_batch_default\": {DEFAULT_LAUNCH_BATCH},\n"
    ));
    json.push_str(&format!(
        "  \"directory_map_sweep\": [{}],\n",
        DIRECTORY_SWEEP
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"directory_map_default\": \"{}\",\n",
        DirectoryMapKind::default().name()
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"producer_ns_per_event\": {:.0}, \
             \"total_ns_per_event\": {:.0}, \"dropped_events\": {}, \
             \"max_queue_depth\": {}, \"producer_flushes\": {}}}{}\n",
            p.scenario,
            p.producer_ns_per_event,
            p.total_ns_per_event,
            p.counters.dropped_events,
            p.counters.max_queue_depth,
            p.counters.producer_flushes,
            sep
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"producer_speedup_coarse\": {coarse_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"target_producer_speedup_coarse\": {TARGET_PRODUCER_SPEEDUP_COARSE},\n"
    ));
    json.push_str(&format!("  \"producer_speedup\": {fine_speedup:.2},\n"));
    json.push_str(&format!(
        "  \"target_producer_speedup\": {TARGET_PRODUCER_SPEEDUP},\n"
    ));
    json.push_str(&format!(
        "  \"directory_flat_speedup\": {dir_flat_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"end_to_end_events_per_sec_sync\": {:.0},\n",
        1e9 / fine_sync.total_ns_per_event
    ));
    json.push_str(&format!(
        "  \"end_to_end_events_per_sec_async\": {:.0},\n",
        1e9 / fine_async.total_ns_per_event
    ));
    json.push_str(&format!(
        "  \"events_per_producer_flush\": {amortization:.1},\n"
    ));
    json.push_str(&format!(
        "  \"dropped_events\": {},\n",
        fine_async.counters.dropped_events + coarse_async.counters.dropped_events
    ));
    // Self-telemetry embed (informational — never `target_`-prefixed, so
    // bench-check reports it without gating on it).
    json.push_str(&format!(
        "  \"telemetry_max_queue_depth\": {},\n",
        telemetry.max_queue_depth
    ));
    json.push_str(&format!(
        "  \"telemetry_dropped_events\": {},\n",
        telemetry.dropped_events
    ));
    json.push_str(&format!(
        "  \"telemetry_flush_p99_ns\": {}\n",
        telemetry.flush_p99_ns
    ));
    json.push_str("}\n");

    std::fs::File::create("BENCH_pipeline.json")
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_pipeline.json");
    print!("{json}");

    eprintln!(
        "at launch_batch {DEFAULT_LAUNCH_BATCH}: fine-grained producer sync {:.0} ns/event vs \
         async enqueue {:.0} ns/event = {:.2}x (target >= {TARGET_PRODUCER_SPEEDUP}x); coarse: \
         {:.0} vs {:.0} = {:.2}x (target >= {TARGET_PRODUCER_SPEEDUP_COARSE}x); drops {}",
        fine_sync.producer_ns_per_event,
        fine_async.producer_ns_per_event,
        fine_speedup,
        coarse_sync.producer_ns_per_event,
        coarse_async.producer_ns_per_event,
        coarse_speedup,
        fine_async.counters.dropped_events
    );
    eprintln!(
        "directory head-to-head (coarse, inline): striped {:.0} ns/event vs flat {:.0} ns/event \
         = {:.2}x for flat; compiled-in default: {}",
        dir_striped.producer_ns_per_event,
        dir_flat.producer_ns_per_event,
        dir_flat_speedup,
        DirectoryMapKind::default().name()
    );
    eprintln!(
        "self-telemetry (fine stream, telemetry on): max queue depth {}, dropped {}, \
         flush p99 {} ns over {} flushes",
        telemetry.max_queue_depth,
        telemetry.dropped_events,
        telemetry.flush_p99_ns,
        telemetry.flushes
    );
}
