//! Regenerates **Figure 7**: the forward-backward association view of the
//! DLRM-small workload — backward kernels attributed to the forward
//! operator's Python context via sequence-id association.

use deepcontext_bench::{deepcontext_profile, EngineKind};
use deepcontext_core::{FrameKind, MetricKind};
use deepcontext_flamegraph::{AsciiOptions, FlameGraph};
use dl_models::{DlrmSmall, WorkloadOptions};
use sim_gpu::DeviceSpec;

fn main() {
    let db = deepcontext_profile(
        &DeviceSpec::a100_sxm(),
        &DlrmSmall,
        &WorkloadOptions::default(),
        EngineKind::Eager,
        3,
    );
    let cct = db.cct();
    let interner = cct.interner();

    println!("Figure 7: forward-backward association view (DLRM-small)\n");

    // Find the indexing_backward_kernel context and print its full call
    // path: it begins with the *forward* Python context.
    let total = cct.total(MetricKind::GpuTime);
    for node in cct.nodes_of_kind(FrameKind::GpuKernel) {
        let label = cct.node(node).frame().short_label(&interner);
        if label != "indexing_backward_kernel" {
            continue;
        }
        let time = cct.node(node).metrics().sum(MetricKind::GpuTime);
        println!(
            "hotspot: {label} — {:.1}% of total GPU time",
            time / total * 100.0
        );
        println!("associated call path (forward context + backward operator):");
        for (depth, frame) in cct.frames_to_root(node).frames().iter().enumerate() {
            println!("{}{}", "  ".repeat(depth), frame.label(&interner));
        }
        break;
    }

    println!("\ntop-down flame graph (GPU time):\n");
    let mut graph = FlameGraph::top_down(cct, MetricKind::GpuTime);
    graph.highlight_hotspots(0.2);
    print!(
        "{}",
        graph.to_ascii(&AsciiOptions {
            min_share: 0.02,
            ..Default::default()
        })
    );
}
