//! The sharded event-ingestion pipeline.
//!
//! Every collection path of the profiler — GPU launch callbacks, completed
//! activity buffers, CPU samples, PC-sampling records — terminates in an
//! [`EventSink`]. The previous design funneled all of them through one
//! `Mutex<CallingContextTree>` plus a correlation-map mutex, so ingestion
//! throughput was capped at one core no matter how many workload threads
//! were producing events. [`ShardedSink`] removes that ceiling:
//!
//! * events are routed to one of N [`CctShard`]s **before** any lock is
//!   taken, keyed by the originating thread (launches, CPU samples) or by
//!   the correlation-id's registered home shard (activity records);
//! * each shard owns a private tree + correlation map behind its own
//!   mutex, so producers on different threads proceed in parallel;
//! * a lock-striped correlation *directory* remembers which shard a
//!   correlation id was bound in, letting asynchronous activity records —
//!   which carry no thread identity — find their way home;
//! * snapshots fold the shards into one master tree and **cache** the
//!   result: every shard carries a dirty generation
//!   ([`CctShard::generation`]) advanced by each tree mutation, and a
//!   refresh re-folds only shards whose generation moved — via
//!   [`CallingContextTree::merge_incremental`], which resumes the
//!   per-shard node mapping and folds per-node metric deltas. Clean
//!   shards are skipped outright, so a warm snapshot costs O(dirty
//!   shards) instead of O(shards × tree). Correlation state stays behind
//!   in the shards for records still in flight ([`CctShard::merge_from`]
//!   exists for folds that must carry it along), and
//!   [`ShardedSink::snapshot_uncached`] keeps the historical full fold
//!   as baseline and test oracle.
//!
//! A `ShardedSink` with one shard routes everything through one lock like
//! the old design (set `ingestion_shards: 1`); the ingestion benchmark in
//! `crates/bench` additionally keeps a faithful reproduction of the full
//! pre-refactor pipeline as its baseline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use deepcontext_core::{
    CallPath, CallingContextTree, CctShard, FoldState, Frame, Interner, MetricKind, NodeId,
};
use dlmonitor::EventOrigin;
use sim_gpu::{Activity, ActivityKind, ApiKind};

/// Writes one activity record's metrics at its resolved context `node` —
/// the single source of truth for the activity-kind → metric mapping,
/// shared by [`ShardedSink`] and the benchmark's single-lock baseline so
/// throughput comparisons never drift apart semantically. Returns the
/// number of instruction samples attributed (0 for non-sampling records).
pub fn attribute_activity_metrics(
    tree: &mut CallingContextTree,
    node: NodeId,
    activity: &Activity,
) -> u64 {
    match &activity.kind {
        ActivityKind::Kernel {
            start,
            end,
            blocks,
            warps,
            occupancy,
            shared_mem_per_block,
            registers_per_thread,
            ..
        } => {
            tree.attribute(node, MetricKind::GpuTime, (*end - *start).as_nanos() as f64);
            tree.attribute_exclusive(node, MetricKind::Blocks, f64::from(*blocks));
            tree.attribute_exclusive(node, MetricKind::Warps, *warps as f64);
            tree.attribute_exclusive(node, MetricKind::Occupancy, *occupancy);
            tree.attribute_exclusive(
                node,
                MetricKind::SharedMemPerBlock,
                *shared_mem_per_block as f64,
            );
            tree.attribute_exclusive(
                node,
                MetricKind::RegistersPerThread,
                f64::from(*registers_per_thread),
            );
            0
        }
        ActivityKind::Memcpy {
            bytes, start, end, ..
        } => {
            tree.attribute(node, MetricKind::MemcpyBytes, *bytes as f64);
            tree.attribute(
                node,
                MetricKind::MemcpyTime,
                (*end - *start).as_nanos() as f64,
            );
            0
        }
        ActivityKind::Malloc { bytes, .. } => {
            tree.attribute(node, MetricKind::GpuAllocBytes, *bytes as f64);
            0
        }
        ActivityKind::Free { .. } => 0,
        ActivityKind::PcSampling { samples, .. } => {
            // Extend the kernel's call path with per-PC instruction frames
            // (paper §4.2: "we will extend the call path by inserting the
            // PC of each instruction collected").
            for sample in samples {
                let child = tree.insert_child(node, &Frame::instruction(sample.pc));
                tree.attribute(child, MetricKind::InstructionSamples, 1.0);
                tree.attribute(child, MetricKind::Stall(sample.stall), 1.0);
            }
            samples.len() as u64
        }
    }
}

/// Monotonic counters a sink maintains while ingesting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkCounters {
    /// Activity records attributed.
    pub activities: u64,
    /// Instruction samples attributed.
    pub instruction_samples: u64,
    /// Records that fell back to the `<unattributed>` catch-all context.
    pub orphans: u64,
    /// Peak approximate profile bytes observed at batch boundaries.
    pub peak_bytes: usize,
    /// Shard folds performed while refreshing snapshots (a cold snapshot
    /// folds every shard; warm ones fold only dirty shards).
    pub snapshot_merges: u64,
    /// Shards skipped by snapshot refreshes because their dirty
    /// generation had not advanced — direct evidence the snapshot cache
    /// is being hit.
    pub shards_skipped: u64,
}

/// Where profiler collection paths deliver their events.
///
/// Implementations must be callable from any producer thread concurrently;
/// the profiler registers one sink and never wraps it in an outer lock.
pub trait EventSink: Send + Sync {
    /// A GPU API call was intercepted at its launch site: bind
    /// `origin.correlation` to the context `path` and (for kernel
    /// launches) count the launch.
    fn gpu_launch(&self, origin: &EventOrigin, path: &CallPath, api: ApiKind);

    /// A buffer of completed asynchronous activity records.
    fn activity_batch(&self, batch: &[Activity]);

    /// A flush boundary completed: the runtime's entire completed-record
    /// backlog has been delivered, so no record referencing an
    /// already-attributed correlation can still be in flight (activity
    /// buffers deliver a kernel's trailing sampling records no later
    /// than the flush that drains the kernel). Sinks may use this to
    /// retire deferred correlation state eagerly and release batch-sized
    /// scratch, keeping resident memory proportional to live state.
    /// Default: no-op.
    fn epoch_complete(&self) {}

    /// A CPU sample (interval timer or hardware-counter overflow) on the
    /// thread identified by `origin`.
    fn cpu_sample(&self, origin: &EventOrigin, path: &CallPath, metric: MetricKind, value: f64);

    /// Folds the sink's state into one calling context tree.
    fn snapshot(&self) -> CallingContextTree;

    /// Runs `f` against a folded snapshot without handing out ownership.
    /// Sinks that cache their fold (see [`ShardedSink`]) serve this by
    /// borrowing the cached tree, so repeated analysis previews skip both
    /// the re-fold *and* the clone that [`snapshot`](Self::snapshot) pays.
    ///
    /// `f` may run while the sink's snapshot lock is held: it must not
    /// call back into this sink's snapshot APIs (`snapshot`,
    /// `with_snapshot`, `finish_snapshot`, `approx_bytes`) — on
    /// [`ShardedSink`] that self-deadlocks. Ingestion from *other*
    /// threads is unaffected.
    fn with_snapshot(&self, f: &mut dyn FnMut(&CallingContextTree)) {
        f(&self.snapshot());
    }

    /// Final snapshot at detach time: like [`snapshot`](Self::snapshot),
    /// but the sink may yield its cached fold by value instead of
    /// cloning, since no further snapshots will be requested.
    fn finish_snapshot(&self) -> CallingContextTree {
        self.snapshot()
    }

    /// Current ingestion counters.
    fn counters(&self) -> SinkCounters;

    /// Approximate resident bytes of all ingestion state.
    fn approx_bytes(&self) -> usize;
}

/// Mixes a routing key so sequential tids/correlation ids spread across
/// shards (splitmix64 finalizer).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The memoized fold of all shards: the merged master tree, the
/// per-shard [`FoldState`] it was built through, and the shard dirty
/// generations it reflects. Refreshing re-folds **only** shards whose
/// generation advanced; the rest are skipped without touching their
/// trees, turning repeated snapshots from O(shards × tree) into
/// O(dirty shards).
struct SnapshotCache {
    master: CallingContextTree,
    folds: Vec<FoldState>,
    /// Generation folded per shard; `u64::MAX` = never folded (shard
    /// generations start at 0, so the first refresh folds everything).
    generations: Vec<u64>,
}

impl SnapshotCache {
    fn empty(interner: &Arc<Interner>, shards: usize) -> Self {
        SnapshotCache {
            master: CallingContextTree::with_interner(Arc::clone(interner)),
            folds: (0..shards).map(|_| FoldState::new()).collect(),
            generations: vec![u64::MAX; shards],
        }
    }
}

/// The sharded [`EventSink`] (see the [module docs](self)).
pub struct ShardedSink {
    interner: Arc<Interner>,
    shards: Vec<Mutex<CctShard>>,
    /// Cached incremental snapshot; `None` until the first snapshot is
    /// requested (and again after `finish_snapshot` consumes it).
    cache: Mutex<Option<SnapshotCache>>,
    /// Correlation id -> index of the shard it was bound in. Striped by
    /// correlation hash so binding and resolving rarely contend.
    directory: Vec<Mutex<HashMap<u64, u32>>>,
    /// Last-known `CctShard::approx_bytes` per shard, refreshed while the
    /// shard lock is already held at batch boundaries, so peak tracking
    /// never sweeps every shard lock.
    shard_bytes: Vec<AtomicUsize>,
    /// Live directory entries across all stripes.
    dir_entries: AtomicUsize,
    activities: AtomicU64,
    instruction_samples: AtomicU64,
    orphans: AtomicU64,
    peak_bytes: AtomicUsize,
    snapshot_merges: AtomicU64,
    shards_skipped: AtomicU64,
}

impl ShardedSink {
    /// Creates a sink with `shard_count` shards (clamped to at least one)
    /// sharing `interner`.
    pub fn new(interner: Arc<Interner>, shard_count: usize) -> Arc<Self> {
        let n = shard_count.max(1);
        Arc::new(ShardedSink {
            shards: (0..n)
                .map(|_| Mutex::new(CctShard::new(Arc::clone(&interner))))
                .collect(),
            directory: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_bytes: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            dir_entries: AtomicUsize::new(0),
            cache: Mutex::new(None),
            interner,
            activities: AtomicU64::new(0),
            instruction_samples: AtomicU64::new(0),
            orphans: AtomicU64::new(0),
            peak_bytes: AtomicUsize::new(0),
            snapshot_merges: AtomicU64::new(0),
            shards_skipped: AtomicU64::new(0),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn index_for(&self, key: u64) -> usize {
        (mix(key) % self.shards.len() as u64) as usize
    }

    /// The shard an event from `origin` routes to: thread identity first
    /// (keeps one producer's contexts together), falling back to the
    /// correlation id, then to shard 0 for identity-less events.
    fn route(&self, origin: &EventOrigin) -> usize {
        if let Some(tid) = origin.tid {
            self.index_for(tid)
        } else if let Some(corr) = origin.correlation {
            self.index_for(corr.0)
        } else {
            0
        }
    }

    fn directory_bind(&self, corr: u64, shard: usize) {
        let slot = self.index_for(corr);
        if self.directory[slot]
            .lock()
            .insert(corr, shard as u32)
            .is_none()
        {
            self.dir_entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn directory_lookup(&self, corr: u64) -> Option<usize> {
        let slot = self.index_for(corr);
        self.directory[slot].lock().get(&corr).map(|s| *s as usize)
    }

    fn directory_remove(&self, corr: u64) {
        let slot = self.index_for(corr);
        if self.directory[slot].lock().remove(&corr).is_some() {
            self.dir_entries.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Attributes one activity record inside its home shard.
    fn attribute_activity(&self, shard: &mut CctShard, activity: &Activity) {
        let corr = activity.correlation_id.0;
        self.activities.fetch_add(1, Ordering::Relaxed);
        let node = match shard.resolve(corr) {
            Some(node) => node,
            None => {
                self.orphans.fetch_add(1, Ordering::Relaxed);
                shard.orphan_node()
            }
        };
        let samples = attribute_activity_metrics(shard.tree_mut(), node, activity);
        if matches!(activity.kind, ActivityKind::PcSampling { .. }) {
            // Sampling records keep their correlation live for the kernel
            // record that follows them.
            self.instruction_samples
                .fetch_add(samples, Ordering::Relaxed);
        } else {
            // Terminal record kinds retire their correlation.
            shard.defer_prune(corr);
        }
    }

    /// Brings the snapshot cache up to date: folds every shard whose
    /// dirty generation advanced since the last refresh and skips the
    /// rest. Each shard lock is held only while that one shard is
    /// inspected/folded (cache → shard is the only lock order involving
    /// the cache, so ingestion never deadlocks against refreshes).
    fn refresh_cache(&self, cache: &mut Option<SnapshotCache>) {
        let cache =
            cache.get_or_insert_with(|| SnapshotCache::empty(&self.interner, self.shards.len()));
        for (idx, slot) in self.shards.iter().enumerate() {
            let shard = slot.lock();
            let generation = shard.generation();
            if cache.generations[idx] == generation {
                self.shards_skipped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            cache
                .master
                .merge_incremental(shard.tree(), &mut cache.folds[idx]);
            cache.generations[idx] = generation;
            self.snapshot_merges.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds all shards into a fresh master tree, bypassing the snapshot
    /// cache — the historical O(shards × tree) path, kept as the
    /// benchmark baseline and as the oracle the `cached == fresh`
    /// equivalence tests compare against.
    pub fn snapshot_uncached(&self) -> CallingContextTree {
        let mut master = CallingContextTree::with_interner(Arc::clone(&self.interner));
        for shard in &self.shards {
            master.merge(shard.lock().tree());
        }
        master
    }

    /// Records the current approximate profile size into the peak, using
    /// the per-shard byte estimates refreshed at batch boundaries — no
    /// cross-shard locking on the ingestion hot path.
    fn note_peak(&self) {
        let shard_bytes: usize = self
            .shard_bytes
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        let dir_entry = std::mem::size_of::<u64>() + std::mem::size_of::<u32>() + 16;
        let bytes = shard_bytes
            + self.dir_entries.load(Ordering::Relaxed) * dir_entry
            + self.interner.approx_bytes();
        self.peak_bytes.fetch_max(bytes, Ordering::Relaxed);
    }
}

impl EventSink for ShardedSink {
    fn gpu_launch(&self, origin: &EventOrigin, path: &CallPath, api: ApiKind) {
        let idx = self.route(origin);
        let mut shard = self.shards[idx].lock();
        let node = shard.insert_call_path(path);
        if api == ApiKind::LaunchKernel {
            shard
                .tree_mut()
                .attribute(node, MetricKind::KernelLaunches, 1.0);
        }
        if let Some(corr) = origin.correlation {
            shard.bind(corr.0, node);
            // Directory stripes are leaf locks: binding here (while the
            // shard is held) guarantees the activity path — which never
            // holds a stripe and a shard at once — sees the binding as
            // soon as it can see the shard's node.
            self.directory_bind(corr.0, idx);
        }
    }

    fn activity_batch(&self, batch: &[Activity]) {
        if batch.is_empty() {
            return;
        }
        // Route every record to its home shard first, then take each
        // shard lock once per batch.
        let mut buckets: Vec<Vec<&Activity>> = vec![Vec::new(); self.shards.len()];
        for activity in batch {
            let corr = activity.correlation_id.0;
            let idx = self
                .directory_lookup(corr)
                .unwrap_or_else(|| self.index_for(corr));
            buckets[idx].push(activity);
        }
        for (idx, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let pruned = {
                let mut shard = self.shards[idx].lock();
                for activity in bucket {
                    self.attribute_activity(&mut shard, activity);
                }
                // Two-phase pruning per shard: correlations attributed in
                // the shard's *previous* batch are dropped now, so
                // sampling records straddling a buffer boundary resolve.
                let pruned = shard.end_batch();
                self.shard_bytes[idx].store(shard.approx_bytes(), Ordering::Relaxed);
                pruned
            };
            for corr in pruned {
                self.directory_remove(corr);
            }
        }
        self.note_peak();
    }

    fn cpu_sample(&self, origin: &EventOrigin, path: &CallPath, metric: MetricKind, value: f64) {
        let idx = self.route(origin);
        let mut shard = self.shards[idx].lock();
        let node = shard.insert_call_path(path);
        shard.tree_mut().attribute(node, metric, value);
    }

    fn epoch_complete(&self) {
        for (idx, slot) in self.shards.iter().enumerate() {
            let pruned = {
                let mut shard = slot.lock();
                // Every deferred correlation's trailing records have been
                // delivered by now, so one extra epoch retires them all.
                let pruned = shard.end_batch();
                shard.trim();
                self.shard_bytes[idx].store(shard.approx_bytes(), Ordering::Relaxed);
                pruned
            };
            for corr in pruned {
                self.directory_remove(corr);
            }
        }
        // Directory stripes shed their high-water capacity too.
        for stripe in &self.directory {
            let mut map = stripe.lock();
            if map.capacity() > 64 && map.capacity() / 4 > map.len() {
                map.shrink_to_fit();
            }
        }
    }

    fn snapshot(&self) -> CallingContextTree {
        // Trees only: correlation state stays in the shards (it is still
        // needed for records that have not arrived yet), so the fold skips
        // `CctShard::merge_from`'s remapping work. The fold is cached and
        // refreshed incrementally: clean shards are skipped outright.
        let mut cache = self.cache.lock();
        self.refresh_cache(&mut cache);
        cache.as_ref().expect("cache refreshed").master.clone()
    }

    fn with_snapshot(&self, f: &mut dyn FnMut(&CallingContextTree)) {
        let mut cache = self.cache.lock();
        self.refresh_cache(&mut cache);
        f(&cache.as_ref().expect("cache refreshed").master);
    }

    fn finish_snapshot(&self) -> CallingContextTree {
        let mut cache = self.cache.lock();
        self.refresh_cache(&mut cache);
        cache.take().expect("cache refreshed").master
    }

    fn counters(&self) -> SinkCounters {
        SinkCounters {
            activities: self.activities.load(Ordering::Relaxed),
            instruction_samples: self.instruction_samples.load(Ordering::Relaxed),
            orphans: self.orphans.load(Ordering::Relaxed),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
            snapshot_merges: self.snapshot_merges.load(Ordering::Relaxed),
            shards_skipped: self.shards_skipped.load(Ordering::Relaxed),
        }
    }

    fn approx_bytes(&self) -> usize {
        // The snapshot cache (cached master tree + per-shard fold state)
        // is tool memory too — once an analysis session opens, it holds
        // roughly another copy of the profile.
        let cache_bytes: usize = self
            .cache
            .lock()
            .as_ref()
            .map(|c| {
                c.master.approx_tree_bytes()
                    + c.folds.iter().map(FoldState::approx_bytes).sum::<usize>()
            })
            .unwrap_or(0);
        let shard_bytes: usize = self.shards.iter().map(|s| s.lock().approx_bytes()).sum();
        let dir_entry = std::mem::size_of::<u64>() + std::mem::size_of::<u32>() + 16;
        let dir_bytes: usize = self
            .directory
            .iter()
            .map(|d| d.lock().capacity() * dir_entry)
            .sum();
        shard_bytes + dir_bytes + cache_bytes + self.interner.approx_bytes()
    }
}

impl std::fmt::Debug for ShardedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSink")
            .field("shards", &self.shards.len())
            .field("counters", &self.counters())
            .finish()
    }
}
