//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace benches use —
//! groups, `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple wall-clock measurement loop:
//! a short warm-up, then timed batches until a budget elapses, reporting
//! the mean time per iteration on stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost (accepted for API parity; the
/// shim always runs setup once per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement driver passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            ns_per_iter: f64::NAN,
            iters: 0,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = Duration::from_millis(60);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < budget && iters < 1_000_000 {
            black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.iters = iters.max(1);
        self.ns_per_iter = elapsed.as_nanos() as f64 / self.iters as f64;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..2 {
            black_box(routine(setup()));
        }
        let budget = Duration::from_millis(60);
        let mut measured = Duration::ZERO;
        let mut iters: u64 = 0;
        let wall = Instant::now();
        while measured < budget && wall.elapsed() < budget * 4 && iters < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.iters = iters.max(1);
        self.ns_per_iter = measured.as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim's measurement loop is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the shim's warm-up is fixed.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API parity; the shim's time budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        println!(
            "bench {:<55} {:>14.1} ns/iter ({} iters)",
            format!("{}/{}", self.name, id),
            b.ns_per_iter,
            b.iters
        );
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Top-level benchmark driver (criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        println!(
            "bench {:<55} {:>14.1} ns/iter ({} iters)",
            id.to_string(),
            b.ns_per_iter,
            b.iters
        );
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| black_box(1 + 1));
        assert!(b.ns_per_iter >= 0.0);
        assert!(b.iters > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new();
        b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::new("p", 4), &4u32, |b, n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }
}
