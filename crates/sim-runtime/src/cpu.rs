//! CPU work accounting and `sigaction`-style sampling.
//!
//! DeepContext "invokes the sigaction system call to register a signal
//! callback for CPU_TIME and REAL_TIME events" and "can also register
//! Linux perf events or invoke PAPI API to obtain metrics from hardware
//! counters" (paper §4.2). The simulation is event-driven and
//! deterministic: simulated CPU work advances per-thread counters, and a
//! registered sampler fires once per interval boundary crossed — exactly
//! the observable behaviour of interval timers and counter-overflow
//! sampling.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::thread::ThreadCtx;
use deepcontext_core::TimeNs;

/// A chunk of simulated CPU work performed by a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuWork {
    /// CPU time consumed.
    pub time: TimeNs,
    /// Retired instructions.
    pub instructions: u64,
    /// Cache misses incurred.
    pub cache_misses: u64,
    /// Branch mispredictions incurred.
    pub branch_misses: u64,
}

impl CpuWork {
    /// Compute-only work: derives plausible counter values from time
    /// (3 instructions/ns, light miss rates).
    pub fn compute(time: TimeNs) -> Self {
        let instructions = time.as_nanos() * 3;
        CpuWork {
            time,
            instructions,
            cache_misses: instructions / 2_000,
            branch_misses: instructions / 5_000,
        }
    }

    /// Memory-bound work: fewer instructions, heavier cache misses.
    pub fn memory_bound(time: TimeNs) -> Self {
        let instructions = time.as_nanos();
        CpuWork {
            time,
            instructions,
            cache_misses: instructions / 50,
            branch_misses: instructions / 10_000,
        }
    }
}

/// What a sampler is listening to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SampleKind {
    /// Thread CPU time (ITIMER_VIRTUAL analogue); interval in ns.
    CpuTime,
    /// Wall-clock time (ITIMER_REAL analogue); interval in ns.
    RealTime,
    /// Retired-instruction overflow sampling; interval in events.
    HwInstructions,
    /// Cache-miss overflow sampling; interval in events.
    HwCacheMisses,
    /// Branch-miss overflow sampling; interval in events.
    HwBranchMisses,
}

impl fmt::Display for SampleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SampleKind::CpuTime => "cpu_time",
            SampleKind::RealTime => "real_time",
            SampleKind::HwInstructions => "hw_instructions",
            SampleKind::HwCacheMisses => "hw_cache_misses",
            SampleKind::HwBranchMisses => "hw_branch_misses",
        };
        f.write_str(s)
    }
}

/// A batch of samples delivered to a handler.
///
/// `count` interval boundaries were crossed during one chunk of work; the
/// handler typically attributes `count * interval` of the sampled quantity
/// to the thread's current call path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleEvent {
    /// The sampled event kind.
    pub kind: SampleKind,
    /// Number of samples fired.
    pub count: u64,
    /// The sampling interval (ns for time kinds, events for counters).
    pub interval: u64,
}

/// Identifier of a registered sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SamplerId(u64);

type Handler = Arc<dyn Fn(&Arc<ThreadCtx>, SampleEvent) + Send + Sync>;

struct Registration {
    id: SamplerId,
    kind: SampleKind,
    interval: u64,
    handler: Handler,
}

/// Registry of interval samplers, the `sigaction`/perf-event substitute.
#[derive(Default)]
pub struct CpuSamplerRegistry {
    samplers: RwLock<Vec<Registration>>,
    next_id: AtomicU64,
    // Per (thread, sampler) residual progress toward the next boundary.
    residuals: Mutex<HashMap<(u64, SamplerId), u64>>,
}

impl CpuSamplerRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers a sampler of `kind` firing every `interval` units.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn register(
        &self,
        kind: SampleKind,
        interval: u64,
        handler: impl Fn(&Arc<ThreadCtx>, SampleEvent) + Send + Sync + 'static,
    ) -> SamplerId {
        assert!(interval > 0, "sampling interval must be positive");
        let id = SamplerId(self.next_id.fetch_add(1, Ordering::SeqCst));
        self.samplers.write().push(Registration {
            id,
            kind,
            interval,
            handler: Arc::new(handler),
        });
        id
    }

    /// Removes a sampler.
    pub fn unregister(&self, id: SamplerId) {
        self.samplers.write().retain(|r| r.id != id);
        self.residuals.lock().retain(|(_, sid), _| *sid != id);
    }

    /// Number of active samplers.
    pub fn len(&self) -> usize {
        self.samplers.read().len()
    }

    /// Whether no samplers are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accounts one chunk of work on `thread`, firing handlers for every
    /// crossed interval boundary. Called by
    /// [`RuntimeEnv::do_cpu_work`](crate::RuntimeEnv::do_cpu_work).
    pub fn on_work(&self, thread: &Arc<ThreadCtx>, work: &CpuWork) {
        // Collect matching handlers first so handlers may re-entrantly
        // inspect the registry.
        let mut to_fire: Vec<(Handler, SampleEvent)> = Vec::new();
        {
            let samplers = self.samplers.read();
            if samplers.is_empty() {
                return;
            }
            let mut residuals = self.residuals.lock();
            for reg in samplers.iter() {
                let amount = match reg.kind {
                    SampleKind::CpuTime | SampleKind::RealTime => work.time.as_nanos(),
                    SampleKind::HwInstructions => work.instructions,
                    SampleKind::HwCacheMisses => work.cache_misses,
                    SampleKind::HwBranchMisses => work.branch_misses,
                };
                if amount == 0 {
                    continue;
                }
                let key = (thread.tid(), reg.id);
                let residual = residuals.entry(key).or_insert(0);
                *residual += amount;
                let count = *residual / reg.interval;
                if count > 0 {
                    *residual %= reg.interval;
                    to_fire.push((
                        Arc::clone(&reg.handler),
                        SampleEvent {
                            kind: reg.kind,
                            count,
                            interval: reg.interval,
                        },
                    ));
                }
            }
        }
        for (handler, event) in to_fire {
            handler(thread, event);
        }
    }
}

impl fmt::Debug for CpuSamplerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpuSamplerRegistry")
            .field("samplers", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::ThreadRegistry;
    use deepcontext_core::ThreadRole;
    use std::sync::atomic::AtomicU64 as Counter;

    fn thread() -> Arc<ThreadCtx> {
        ThreadRegistry::new().spawn(ThreadRole::Main)
    }

    #[test]
    fn fires_once_per_interval_boundary() {
        let reg = CpuSamplerRegistry::new();
        let fired = Arc::new(Counter::new(0));
        let f = Arc::clone(&fired);
        reg.register(SampleKind::CpuTime, 100, move |_t, e| {
            assert_eq!(e.kind, SampleKind::CpuTime);
            assert_eq!(e.interval, 100);
            f.fetch_add(e.count, Ordering::SeqCst);
        });
        let t = thread();
        reg.on_work(
            &t,
            &CpuWork {
                time: TimeNs(250),
                ..Default::default()
            },
        );
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        // Residual 50 + 50 = one more boundary.
        reg.on_work(
            &t,
            &CpuWork {
                time: TimeNs(50),
                ..Default::default()
            },
        );
        assert_eq!(fired.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn residuals_are_per_thread() {
        let reg = CpuSamplerRegistry::new();
        let fired = Arc::new(Counter::new(0));
        let f = Arc::clone(&fired);
        reg.register(SampleKind::CpuTime, 100, move |_t, e| {
            f.fetch_add(e.count, Ordering::SeqCst);
        });
        let threads = ThreadRegistry::new();
        let t1 = threads.spawn(ThreadRole::Main);
        let t2 = threads.spawn(ThreadRole::Worker);
        reg.on_work(
            &t1,
            &CpuWork {
                time: TimeNs(60),
                ..Default::default()
            },
        );
        reg.on_work(
            &t2,
            &CpuWork {
                time: TimeNs(60),
                ..Default::default()
            },
        );
        // Neither crossed a boundary on its own.
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        reg.on_work(
            &t1,
            &CpuWork {
                time: TimeNs(60),
                ..Default::default()
            },
        );
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn hardware_counter_sampling_uses_event_counts() {
        let reg = CpuSamplerRegistry::new();
        let fired = Arc::new(Counter::new(0));
        let f = Arc::clone(&fired);
        reg.register(SampleKind::HwCacheMisses, 10, move |_t, e| {
            f.fetch_add(e.count, Ordering::SeqCst);
        });
        let t = thread();
        reg.on_work(
            &t,
            &CpuWork {
                time: TimeNs(1),
                cache_misses: 35,
                ..Default::default()
            },
        );
        assert_eq!(fired.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn unregister_stops_delivery() {
        let reg = CpuSamplerRegistry::new();
        let fired = Arc::new(Counter::new(0));
        let f = Arc::clone(&fired);
        let id = reg.register(SampleKind::CpuTime, 10, move |_t, e| {
            f.fetch_add(e.count, Ordering::SeqCst);
        });
        let t = thread();
        reg.on_work(
            &t,
            &CpuWork {
                time: TimeNs(20),
                ..Default::default()
            },
        );
        assert_eq!(fired.load(Ordering::SeqCst), 2);
        reg.unregister(id);
        assert!(reg.is_empty());
        reg.on_work(
            &t,
            &CpuWork {
                time: TimeNs(100),
                ..Default::default()
            },
        );
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let reg = CpuSamplerRegistry::new();
        reg.register(SampleKind::CpuTime, 0, |_t, _e| {});
    }

    #[test]
    fn cpu_work_presets_are_consistent() {
        let c = CpuWork::compute(TimeNs(1_000));
        let m = CpuWork::memory_bound(TimeNs(1_000));
        assert!(c.instructions > m.instructions);
        assert!(m.cache_misses > c.cache_misses);
    }
}
