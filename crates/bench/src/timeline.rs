//! Timeline-recording overhead harness.
//!
//! The timeline tap sits inside the attribution path (the interval is
//! recorded while the shard lock is already held), so its producer-side
//! cost is sharpest in synchronous inline mode, where attribution runs
//! on the monitored workload's thread. This harness measures exactly
//! that worst case: the same pre-built event stream driven through a
//! [`ShardedSink`] with recording off (the baseline every earlier bench
//! measured) and on, over two stream shapes:
//!
//! * **coarse** — one producer, one stream: every interval lands in one
//!   ring, the maximal per-ring pressure;
//! * **multi-stream** — the `MultiStream` workload's shape (2 devices ×
//!   3 streams, interleaved): intervals fan out across tracks the way
//!   the timeline's analyses consume them.
//!
//! The headline number is `overhead = on / off` per scenario; the
//! acceptance bar is ≤ 1.15x with zero ring overflows at the default
//! capacity.

use std::sync::Arc;
use std::time::Instant;

use deepcontext_core::{CallPath, Frame, Interner, TimeNs};
use deepcontext_profiler::{EventSink, ShardedSink, SinkCounters, TimelineConfig};
use dlmonitor::EventOrigin;
use sim_gpu::{Activity, ActivityKind, CorrelationId, DeviceId, StreamId};

use crate::pipeline::{drive_producer, prepare, PipelineEvent};

/// Shards the sink uses (the profiler default).
pub const SHARDS: usize = 16;

/// One measured timeline configuration.
#[derive(Debug, Clone)]
pub struct TimelinePoint {
    /// Scenario label (report key), `*_off` or `*_on`.
    pub scenario: String,
    /// Producer-side nanoseconds per event (launch + its activities,
    /// attributed inline).
    pub producer_ns_per_event: f64,
    /// Sink counters after the run (interval/overflow accounting).
    pub counters: SinkCounters,
}

/// Builds the multi-stream event stream: `ops` kernel launches
/// interleaved round-robin over `devices × streams` placements from one
/// producer thread, with overlapping device windows per stream — the
/// `MultiStream` workload's shape, pre-built so the timed loop measures
/// only sink cost.
pub fn multi_stream_events(
    interner: &Arc<Interner>,
    ops: usize,
    devices: u32,
    streams: u32,
) -> Vec<PipelineEvent> {
    let branches = (devices * streams).max(1) as usize;
    (0..ops)
        .map(|k| {
            let branch = k % branches;
            let device = (branch as u32) % devices.max(1);
            let stream = (branch as u32) / devices.max(1);
            let kernel = format!("kernel_{}", k % 8);
            let corr = k as u64 + 1;
            let mut path = CallPath::new();
            path.push(Frame::python("multi_stream.py", 7, "forward", interner));
            path.push(Frame::operator(&format!("aten::op{}", k % 5), interner));
            path.push(Frame::gpu_kernel(
                &kernel,
                "module.so",
                0x1000 + (k % 8) as u64,
                interner,
            ));
            // Streams advance independently, so same-device streams
            // overlap in device time like real concurrent inference.
            let start = TimeNs((k / branches) as u64 * 300 + u64::from(stream) * 40);
            PipelineEvent {
                origin: EventOrigin {
                    tid: Some(1),
                    stream: Some(StreamId(stream)),
                    correlation: Some(CorrelationId(corr)),
                },
                path,
                activities: vec![Activity {
                    correlation_id: CorrelationId(corr),
                    device: DeviceId(device),
                    kind: ActivityKind::Kernel {
                        name: Arc::from(kernel.as_str()),
                        module: Arc::from("module.so"),
                        entry_pc: 0x1000 + (k % 8) as u64,
                        stream: StreamId(stream),
                        start,
                        end: start + TimeNs(250),
                        blocks: 16,
                        warps: 128,
                        occupancy: 0.6,
                        shared_mem_per_block: 0,
                        registers_per_thread: 32,
                    },
                }],
            }
        })
        .collect()
}

/// Measures inline synchronous ingestion of `events` with the given
/// timeline configuration, best of `repeats`.
pub fn measure_with_timeline(
    label: &str,
    events: &[PipelineEvent],
    interner: &Arc<Interner>,
    repeats: usize,
    timeline: &TimelineConfig,
) -> TimelinePoint {
    let mut best = f64::INFINITY;
    let mut counters = SinkCounters::default();
    for _ in 0..repeats.max(1) {
        let sink = ShardedSink::with_timeline(Arc::clone(interner), SHARDS, true, timeline);
        let inputs = prepare(events);
        let start = Instant::now();
        drive_producer(sink.as_ref(), events, inputs);
        let elapsed = start.elapsed().as_nanos() as f64;
        counters = sink.counters();
        best = best.min(elapsed / events.len() as f64);
    }
    TimelinePoint {
        scenario: format!("{label}_{}", if timeline.enabled { "on" } else { "off" }),
        producer_ns_per_event: best,
        counters,
    }
}

/// The full comparison: recording off vs on over the coarse and
/// multi-stream streams. Returns points in `(off, on)` pairs per shape.
pub fn timeline_matrix(ops: usize, repeats: usize) -> Vec<TimelinePoint> {
    let interner = Interner::new();
    let coarse = crate::pipeline::coarse_stream(&interner, ops);
    let multi = multi_stream_events(&interner, ops, 2, 3);
    let off = TimelineConfig::default();
    let on = TimelineConfig::enabled();
    vec![
        measure_with_timeline("coarse", &coarse, &interner, repeats, &off),
        measure_with_timeline("coarse", &coarse, &interner, repeats, &on),
        measure_with_timeline("multi_stream", &multi, &interner, repeats, &off),
        measure_with_timeline("multi_stream", &multi, &interner, repeats, &on),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::MetricKind;

    #[test]
    fn matrix_measures_all_scenarios_without_overflow() {
        let points = timeline_matrix(512, 1);
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(p.producer_ns_per_event > 0.0, "{}", p.scenario);
            assert_eq!(p.counters.timeline_dropped, 0, "{}", p.scenario);
            if p.scenario.ends_with("_on") {
                assert_eq!(p.counters.timeline_intervals, 512, "{}", p.scenario);
            } else {
                assert_eq!(p.counters.timeline_intervals, 0, "{}", p.scenario);
            }
        }
    }

    #[test]
    fn multi_stream_events_cover_every_placement_and_profile_identically() {
        let interner = Interner::new();
        let events = multi_stream_events(&interner, 600, 2, 3);
        let on = ShardedSink::with_timeline(
            Arc::clone(&interner),
            SHARDS,
            true,
            &TimelineConfig::enabled(),
        );
        drive_producer(on.as_ref(), &events, prepare(&events));
        let timeline = on.timeline_snapshot().expect("timeline on");
        assert_eq!(timeline.tracks().len(), 6, "2 devices × 3 streams");
        for device in timeline.stats().devices.iter() {
            assert!(device.overlap_factor() > 1.0, "streams overlap");
        }
        // Recording is a tap, not a fork: the profile itself is
        // unchanged by the timeline.
        let off = ShardedSink::new(Arc::clone(&interner), SHARDS);
        drive_producer(off.as_ref(), &events, prepare(&events));
        assert_eq!(on.snapshot().semantic_diff(&off.snapshot()), None);
        assert_eq!(
            on.snapshot().total(MetricKind::GpuTime),
            off.snapshot().total(MetricKind::GpuTime)
        );
    }
}
