//! Timeline demo: record per-(device, stream) interval tracks alongside
//! the profile and export a Chrome trace.
//!
//! ```text
//! cargo run --release --example timeline_trace
//! ```
//!
//! Runs the multi-stream workload (2 devices × 3 streams) with timeline
//! recording on, prints per-device utilization / overlap / idle-gap
//! statistics and the timeline-backed analyzer findings, and writes
//! `artifacts/timeline_trace.json` — load it in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see one swim-lane per stream, each
//! slice carrying its full calling context. Run with
//! `DEEPCONTEXT_TELEMETRY=1` to additionally get the `profiler (self)`
//! process: the profiler's own worker batches, producer flushes, and
//! snapshot folds as slices next to the workload they serve. Add
//! `DEEPCONTEXT_JOURNAL=1` and journaled lifecycle incidents render as
//! instant markers on that process's `incidents` lane.

use deepcontext::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-GPU platform; MultiStream fans overlapping kernels over
    // 2 devices × 3 streams.
    let bed = TestBed::with_devices(vec![DeviceSpec::a100_sxm(), DeviceSpec::a100_sxm()]);
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());

    // Timeline recording is off by default; flip it on for this run.
    let profiler = Profiler::attach(
        ProfilerConfig {
            timeline: TimelineConfig::enabled(),
            ..ProfilerConfig::deepcontext()
        },
        bed.env(),
        &monitor,
        bed.gpu(),
    );

    let workload = MultiStream::default();
    let stats = bed.run_eager(&workload, &WorkloadOptions::default(), 4)?;
    profiler.flush();
    println!(
        "ran {} iterations: {} kernels over {} devices x {} streams",
        stats.iterations,
        stats.kernels,
        workload.devices(),
        workload.streams()
    );

    // The assembled timeline: one track per (device, stream).
    let timeline = profiler.timeline().expect("timeline enabled");
    let pstats = profiler.stats();
    println!(
        "recorded {} intervals across {} tracks ({} evicted by ring overflow)",
        pstats.timeline_intervals,
        timeline.tracks().len(),
        pstats.timeline_dropped
    );
    println!("\n=== per-device latency statistics ===");
    for device in &timeline.stats().devices {
        println!(
            "GPU {}: {} streams, span {}, busy {} ({:.1}% utilized), \
             overlap factor {:.2}, idle {} over {} gaps",
            device.device,
            device.streams,
            device.span(),
            device.busy,
            device.utilization() * 100.0,
            device.overlap_factor(),
            device.idle(),
            device.gaps.len()
        );
    }

    // Timeline-backed analysis (idle gaps, stream serialization) runs
    // against the same snapshot the context ids were resolved with.
    let analyzer = Analyzer::with_default_rules();
    let report = profiler.with_cct(|cct| analyzer.preview_with_timeline(cct, &timeline));
    println!("\n=== timeline-backed analysis ===");
    let latency: Vec<_> = report
        .issues()
        .iter()
        .filter(|i| i.rule == "gpu-idle" || i.rule == "stream-serialization")
        .collect();
    if latency.is_empty() {
        println!("no latency issues: streams overlap and the devices stay busy");
    } else {
        for issue in latency {
            print!("{issue}");
        }
    }

    // Export the Chrome trace with full calling contexts on each slice,
    // and — when `DEEPCONTEXT_JOURNAL=1` — the incident journal as
    // instant markers next to the slices they explain.
    let journal = profiler.journal_snapshot();
    if let Some(journal) = &journal {
        println!(
            "\nincident journal: {} event(s) recorded ({} evicted)",
            journal.recorded, journal.evicted
        );
    }
    let trace =
        profiler.with_cct(|cct| timeline.to_chrome_trace_with_journal(Some(cct), journal.as_ref()));
    std::fs::create_dir_all("artifacts")?;
    std::fs::write("artifacts/timeline_trace.json", &trace)?;
    println!(
        "\nwrote artifacts/timeline_trace.json ({} bytes) — load it in chrome://tracing \
         or ui.perfetto.dev",
        trace.len()
    );
    Ok(())
}
