//! Bounded interval storage: per-shard ring buffers behind one
//! recording facade.
//!
//! The ingestion pipeline records an interval at the moment the
//! corresponding activity record is attributed inside its home shard —
//! already serialized per shard — so the timeline mirrors that layout:
//! one [`IntervalRing`] per shard, each behind its own mutex that is
//! only ever contended by that shard's applier and by snapshots. A full
//! ring evicts its oldest interval and counts it, so a long run's
//! timeline degrades to a bounded trailing window instead of growing
//! with the event count (the CCT keeps the lossless aggregate view
//! either way).

use parking_lot::Mutex;

use deepcontext_core::{Interval, NodeId};

use crate::snapshot::TimelineSnapshot;
use crate::TimelineConfig;

/// A fixed-capacity interval buffer that evicts its oldest entry when
/// full, counting every push and every eviction.
///
/// The counters live here — plain integers updated under the ring's
/// lock, which the recording path already holds — instead of as shared
/// atomics: the tap sits inside inline attribution, and a per-interval
/// atomic RMW is measurable against the ~tens-of-nanoseconds budget the
/// recording overhead bar allows. Reads ([`TimelineSink::counters`])
/// sum over the rings on the cold stats path.
#[derive(Debug, Clone)]
pub struct IntervalRing {
    buf: Vec<Interval>,
    /// Index of the oldest entry once the buffer has wrapped.
    head: usize,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

impl IntervalRing {
    /// An empty ring holding at most `capacity` intervals (clamped to at
    /// least one). Storage is allocated lazily as intervals arrive.
    pub fn new(capacity: usize) -> Self {
        IntervalRing {
            buf: Vec::new(),
            head: 0,
            capacity: capacity.max(1),
            recorded: 0,
            dropped: 0,
        }
    }

    /// Appends `interval`, evicting (and counting) the oldest entry when
    /// the ring is full.
    pub fn push(&mut self, interval: Interval) {
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(interval);
        } else {
            self.buf[self.head] = interval;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Live intervals, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Interval> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Intervals ever pushed (including any later evicted by overflow).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Intervals evicted by overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Approximate resident bytes (allocated storage, not capacity).
    pub fn approx_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<Interval>()
    }
}

/// Monotonic timeline-recording counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimelineCounters {
    /// Intervals recorded (including any later evicted by overflow).
    pub recorded: u64,
    /// Intervals evicted by ring overflow — the timeline analogue of the
    /// pipeline's dropped-event telemetry; surfaced through
    /// `ProfilerStats` and on every [`TimelineSnapshot`].
    pub dropped: u64,
}

/// The recording facade the ingestion pipeline writes into: one bounded
/// ring per ingestion shard; counters live inside the rings (see
/// [`IntervalRing`]) and are summed on read.
pub struct TimelineSink {
    rings: Vec<Mutex<IntervalRing>>,
    ring_capacity: usize,
}

impl TimelineSink {
    /// A sink with one ring (of `config.ring_capacity`) per shard.
    pub fn new(shards: usize, config: &TimelineConfig) -> Self {
        let capacity = config.ring_capacity.max(1);
        TimelineSink {
            rings: (0..shards.max(1))
                .map(|_| Mutex::new(IntervalRing::new(capacity)))
                .collect(),
            ring_capacity: capacity,
        }
    }

    /// Number of shard rings.
    pub fn shard_count(&self) -> usize {
        self.rings.len()
    }

    /// Per-ring interval capacity.
    pub fn ring_capacity(&self) -> usize {
        self.ring_capacity
    }

    /// Records one interval into shard `idx`'s ring. Callers serialize
    /// per shard already (the pipeline records while holding the shard's
    /// lock), so this lock is effectively uncontended outside snapshots
    /// — and the ring's own counters make this one lock acquisition the
    /// tap's entire bookkeeping (no shared atomics).
    pub fn record(&self, idx: usize, interval: Interval) {
        self.rings[idx].lock().push(interval);
    }

    /// Current counters, summed over the rings.
    pub fn counters(&self) -> TimelineCounters {
        let mut counters = TimelineCounters::default();
        for ring in &self.rings {
            let ring = ring.lock();
            counters.recorded += ring.recorded();
            counters.dropped += ring.dropped();
        }
        counters
    }

    /// Assembles the current ring contents into per-track sorted
    /// intervals, remapping each interval's shard-local context id
    /// through `remap(shard, node)` into the caller's master-tree id
    /// space (return `None` to leave the context unresolved).
    ///
    /// Callers are responsible for quiescing ingestion first (the
    /// pipeline's snapshot paths run this behind their drain barriers),
    /// which is what makes asynchronous-mode timelines deterministic at
    /// every flush.
    pub fn snapshot_with(
        &self,
        mut remap: impl FnMut(usize, NodeId) -> Option<NodeId>,
    ) -> TimelineSnapshot {
        let mut intervals = Vec::new();
        let mut counters = TimelineCounters::default();
        for (idx, ring) in self.rings.iter().enumerate() {
            let ring = ring.lock();
            counters.recorded += ring.recorded();
            counters.dropped += ring.dropped();
            intervals.extend(ring.iter().cloned().map(|mut interval| {
                interval.context = interval.context.and_then(|node| remap(idx, node));
                interval
            }));
        }
        TimelineSnapshot::from_intervals(intervals, counters)
    }

    /// Approximate resident bytes of all rings.
    pub fn approx_bytes(&self) -> usize {
        self.rings
            .iter()
            .map(|r| std::mem::size_of::<Mutex<IntervalRing>>() + r.lock().approx_bytes())
            .sum()
    }
}

impl std::fmt::Debug for TimelineSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimelineSink")
            .field("shards", &self.rings.len())
            .field("ring_capacity", &self.ring_capacity)
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{Interner, IntervalKind, TimeNs, TrackKey};
    use std::sync::{Arc, OnceLock};

    fn interval(corr: u64, start: u64, end: u64) -> Interval {
        static INTERNER: OnceLock<Arc<Interner>> = OnceLock::new();
        Interval {
            track: TrackKey {
                device: 0,
                stream: 0,
            },
            start: TimeNs(start),
            end: TimeNs(end),
            kind: IntervalKind::Kernel,
            name: INTERNER.get_or_init(Interner::new).intern("k"),
            correlation: corr,
            context: None,
        }
    }

    #[test]
    fn ring_keeps_the_newest_and_counts_evictions() {
        let mut ring = IntervalRing::new(4);
        for corr in 1..=10u64 {
            ring.push(interval(corr, corr * 10, corr * 10 + 5));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 6);
        let corrs: Vec<u64> = ring.iter().map(|iv| iv.correlation).collect();
        assert_eq!(corrs, vec![7, 8, 9, 10], "oldest-first, newest kept");
    }

    #[test]
    fn sink_counters_partition_recorded_into_kept_plus_dropped() {
        let sink = TimelineSink::new(
            2,
            &TimelineConfig {
                enabled: true,
                ring_capacity: 3,
            },
        );
        for corr in 1..=5u64 {
            sink.record(0, interval(corr, corr, corr + 1));
        }
        sink.record(1, interval(99, 1, 2));
        let counters = sink.counters();
        assert_eq!(counters.recorded, 6);
        assert_eq!(counters.dropped, 2);
        let snap = sink.snapshot_with(|_, node| Some(node));
        assert_eq!(
            snap.interval_count() as u64 + counters.dropped,
            counters.recorded,
            "kept + dropped == recorded"
        );
        assert_eq!(snap.dropped(), counters.dropped);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut ring = IntervalRing::new(0);
        ring.push(interval(1, 0, 1));
        ring.push(interval(2, 1, 2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }
}
