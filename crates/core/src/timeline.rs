//! Timeline interval primitives.
//!
//! The calling context tree aggregates *how much* time each context
//! consumed; a timeline records *when* — the `[start, end)` device
//! intervals that aggregation would otherwise discard. [`Interval`] is
//! the unit of that record: one kernel or memcpy execution on one
//! `(device, stream)` placement, tagged with the CCT context it was
//! attributed to, so latency analyses (utilization, cross-stream
//! overlap, idle-gap attribution) can point back into the same tree the
//! aggregate analyses run over. The bounded ring buffers, track
//! assembly and analysis live in the `deepcontext-timeline` crate; the
//! plain data types live here so every layer (ingestion pipeline,
//! analyzer, exporters) shares one vocabulary without depending on the
//! timeline machinery.

use std::sync::Arc;

use crate::cct::NodeId;
use crate::clock::TimeNs;
use crate::interner::Sym;

/// What kind of device work an [`Interval`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IntervalKind {
    /// A kernel execution.
    Kernel,
    /// An asynchronous memcpy.
    Memcpy,
}

impl IntervalKind {
    /// Stable short name (Chrome-trace category, report keys).
    pub fn name(self) -> &'static str {
        match self {
            IntervalKind::Kernel => "kernel",
            IntervalKind::Memcpy => "memcpy",
        }
    }
}

/// The `(device, stream)` placement an interval executed on — one track
/// of the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackKey {
    /// Device index.
    pub device: u32,
    /// Stream index on that device.
    pub stream: u32,
}

impl TrackKey {
    /// The device id reserved for the profiler's *self-timeline*: when
    /// self-telemetry is on, worker batches, producer flushes, and
    /// snapshot folds are recorded as intervals on this device so
    /// exporters can render the profiler's own execution next to the
    /// workload it profiled. No simulated GPU can claim it (real device
    /// ids count up from zero), and because it sorts last the self
    /// track always renders below the workload tracks.
    ///
    /// Self-interval timestamps are wall-clock nanoseconds since the
    /// telemetry session's epoch — a different time domain from the
    /// workload's virtual clock, which is acceptable precisely because
    /// the tracks never interleave.
    pub const SELF_DEVICE: u32 = u32::MAX;

    /// Self-timeline stream carrying pipeline worker-batch intervals
    /// (one stream per worker: `SELF_STREAM_WORKER + worker index`).
    pub const SELF_STREAM_WORKER: u32 = 0;
    /// Self-timeline stream carrying producer batch-flush intervals.
    pub const SELF_STREAM_FLUSH: u32 = 1_000;
    /// Self-timeline stream carrying incremental snapshot-fold
    /// intervals.
    pub const SELF_STREAM_FOLD: u32 = 1_001;

    /// A track on the reserved self-telemetry device.
    pub fn self_track(stream: u32) -> TrackKey {
        TrackKey {
            device: TrackKey::SELF_DEVICE,
            stream,
        }
    }

    /// Whether this track is the profiler's own (reserved device).
    pub fn is_self(&self) -> bool {
        self.device == TrackKey::SELF_DEVICE
    }
}

/// One recorded device interval: a kernel or memcpy execution with its
/// placement, its `[start, end)` device-time window, and the CCT context
/// it was attributed to.
///
/// `Interval` is plain `Copy` data: the display name is an interned
/// [`Sym`], not a string — the ingestion tap records the handle and only
/// export/analysis time resolves it (through the session interner or a
/// snapshot's captured symbol table), so recording an interval performs
/// zero heap allocation and zero refcount traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Where it ran.
    pub track: TrackKey,
    /// Device-side start time.
    pub start: TimeNs,
    /// Device-side end time.
    pub end: TimeNs,
    /// Kernel or memcpy.
    pub kind: IntervalKind,
    /// Interned display name (kernel name; `"memcpy"` for copies).
    /// Resolve through the interner that ingested the interval.
    pub name: Sym,
    /// Correlation id linking back to the launching API call.
    pub correlation: u64,
    /// The CCT context the interval's metrics were attributed to.
    ///
    /// While buffered inside the ingestion pipeline this is a
    /// *shard-local* node id; snapshots remap it into the folded master
    /// tree (`None` when the context cannot be resolved — e.g. the
    /// orphaned-record fallback of a pruned correlation).
    pub context: Option<NodeId>,
}

impl Interval {
    /// Interval duration (zero-width intervals are allowed but carry no
    /// busy time).
    pub fn duration(&self) -> TimeNs {
        self.end.saturating_sub(self.start)
    }
}

/// A timeline in its persistent form: the flattened interval set of an
/// assembled snapshot, the captured symbol table its interval names
/// resolve against, the recording counters, and the run's wall-clock
/// window.
///
/// This is the shape `ProfileDb` stores on disk so a run's timeline
/// survives the profiler. It lives in core (next to [`Interval`]) rather
/// than in the timeline crate so the database can hold one without a
/// dependency cycle; the timeline crate converts to and from its
/// assembled `TimelineSnapshot` view (`TimelineSnapshot::to_stored` /
/// `TimelineSnapshot::from_stored`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoredTimeline {
    /// Every live interval at snapshot time, in no particular order
    /// (consumers re-group into per-track, start-sorted views).
    /// `Interval::context` ids index into the profile's master tree.
    pub intervals: Vec<Interval>,
    /// The captured symbol table: `Interval::name` handles index into
    /// this vector. Out-of-range handles simply fail to resolve.
    pub names: Vec<Arc<str>>,
    /// Intervals recorded over the run (kept + evicted).
    pub recorded: u64,
    /// Intervals evicted by ring overflow — when non-zero the stored
    /// timeline is a trailing window of the run, not the whole run.
    pub dropped: u64,
    /// The run's wall-clock window `[start, end)`, when known. Bounds
    /// idle-gap analysis at the run's edges: device idle before the
    /// first launch and after the last completion is measurable instead
    /// of invisible.
    pub window: Option<(TimeNs, TimeNs)>,
}

impl StoredTimeline {
    /// Resolves an interval name against the captured symbol table.
    pub fn name_of(&self, sym: Sym) -> Option<&str> {
        self.names.get(sym.index() as usize).map(|s| s.as_ref())
    }

    /// Total live intervals.
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    #[test]
    fn duration_saturates_and_names_are_stable() {
        let interner = Interner::new();
        let iv = Interval {
            track: TrackKey {
                device: 0,
                stream: 2,
            },
            start: TimeNs(100),
            end: TimeNs(250),
            kind: IntervalKind::Kernel,
            name: interner.intern("sgemm"),
            correlation: 7,
            context: None,
        };
        assert_eq!(interner.resolve(iv.name).as_ref(), "sgemm");
        assert_eq!(iv.duration(), TimeNs(150));
        assert_eq!(IntervalKind::Kernel.name(), "kernel");
        assert_eq!(IntervalKind::Memcpy.name(), "memcpy");
        let backwards = Interval {
            start: TimeNs(10),
            end: TimeNs(5),
            ..iv
        };
        assert_eq!(backwards.duration(), TimeNs::ZERO);
    }
}
