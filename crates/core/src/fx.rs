//! Fx-style hashing: one multiply-rotate round per word instead of
//! SipHash.
//!
//! The profiler's hottest maps — the CCT `child_index` probed per frame
//! of every inserted call path, the per-shard correlation maps hit per
//! activity record, the interner stripes hit per intern — all key on
//! small, attacker-free data (interned symbols, node ids, correlation
//! counters). SipHash's per-lookup setup cost is pure overhead there.
//! [`FxHasher`] is the Firefox/rustc "fx" function — fold each 8-byte
//! word into the state with one rotate, one xor and one multiply by a
//! mixing constant — plus a high-to-low xor-shift after the multiply:
//! plain fx keeps a difference in a word's top byte confined to the top
//! byte (multiplication only carries upward), which makes short-string
//! families like `kernel_19`/`kernel_92` collide outright. The extra
//! shift folds the well-mixed high half back down each round. It is not
//! DoS-resistant, which is exactly the trade these internal maps want.
//!
//! Use the [`FxHashMap`] / [`FxHashSet`] aliases; they drop into any
//! `HashMap`/`HashSet` signature via `FxHashMap::default()`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixing constant (64-bit golden-ratio fraction, the
/// same constant rustc's fx hasher uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The fx hash function: one rotate-xor-multiply round per 8-byte word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        let mixed = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
        // Fold the high half down so upper-byte differences propagate
        // into the bits the next round (and the hash table) actually use.
        self.hash = mixed ^ (mixed >> 32);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // One round per aligned 8-byte word, then one round for the tail
        // (zero-padded). Length is folded in so prefixes hash apart.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, so map layouts are
/// deterministic across runs).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using fx hashing — the default map for the profiler's
/// internal hot paths. Construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using fx hashing. Construct with `FxHashSet::default()`.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn equal_inputs_hash_equal_and_hashes_are_stable_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"aten::matmul"), hash_of(&"aten::matmul"));
        let a = FxBuildHasher::default().hash_one("sgemm_128x128");
        let b = FxBuildHasher::default().hash_one("sgemm_128x128");
        assert_eq!(a, b, "stateless builder: deterministic across instances");
    }

    #[test]
    fn distinct_inputs_spread() {
        // Not a statistical test — just catch a degenerate implementation
        // that maps everything (or sequential keys) to one value.
        let hashes: FxHashSet<u64> = (0..1000u64).map(|n| hash_of(&n)).collect();
        assert_eq!(hashes.len(), 1000);
        let strings: FxHashSet<u64> = (0..1000).map(|n| hash_of(&format!("kernel_{n}"))).collect();
        assert_eq!(strings.len(), 1000);
    }

    #[test]
    fn str_prefixes_hash_apart() {
        // The length fold keeps zero-padded tails from colliding with
        // their extensions.
        assert_ne!(hash_of(&"abc"), hash_of(&"abc\0"));
        assert_ne!(hash_of(&""), hash_of(&"\0"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<String, u32> = FxHashMap::default();
        map.insert("a".into(), 1);
        map.insert("b".into(), 2);
        assert_eq!(map.get("a"), Some(&1));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
    }
}
