//! Simulated input pipeline with a worker pool.
//!
//! Reproduces the §6.4 case study: a data loader hard-coded to more
//! workers than the node has physical cores incurs scheduling overhead,
//! showing up as CPU time under `data_selection` while the GPU idles. The
//! oversubscription model charges a penalty proportional to the
//! worker-to-core excess.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use deepcontext_core::{ThreadRole, TimeNs};
use sim_runtime::{CpuWork, RuntimeEnv, ThreadCtx};

use crate::pyscope::PythonSim;

/// Data loader configuration.
#[derive(Debug, Clone)]
pub struct DataLoaderConfig {
    /// Worker threads to spawn.
    pub num_workers: usize,
    /// Physical CPU cores available on the node.
    pub physical_cores: usize,
    /// CPU time to decode/augment one item.
    pub per_item_cpu: TimeNs,
    /// Items per batch.
    pub items_per_batch: usize,
    /// One-time disk warm-up cost on the first batch (paper: "the first
    /// iteration of loading data from the disk takes 10 seconds").
    pub first_batch_disk: TimeNs,
    /// Python frame the loading work appears under.
    pub python_context: (String, u32, String),
}

impl Default for DataLoaderConfig {
    fn default() -> Self {
        DataLoaderConfig {
            num_workers: 4,
            physical_cores: 6,
            per_item_cpu: TimeNs::from_us(200),
            items_per_batch: 32,
            first_batch_disk: TimeNs::from_ms(100),
            python_context: ("input_pipeline.py".into(), 88, "data_selection".into()),
        }
    }
}

/// Per-worker oversubscription penalty factor.
fn oversubscription_penalty(workers: usize, cores: usize) -> f64 {
    if workers <= cores {
        1.0
    } else {
        1.0 + 0.35 * (workers - cores) as f64 / cores as f64
    }
}

/// A simulated multi-worker data loader.
#[derive(Debug)]
pub struct DataLoader {
    env: RuntimeEnv,
    config: DataLoaderConfig,
    workers: Vec<Arc<ThreadCtx>>,
    iteration: AtomicU64,
    // Keep the workers' persistent Python/native context alive.
    _scopes: Vec<crate::pyscope::PyScope>,
}

impl DataLoader {
    /// Spawns the worker pool.
    pub fn new(env: &RuntimeEnv, python: &PythonSim, config: DataLoaderConfig) -> Self {
        let mut workers = Vec::with_capacity(config.num_workers);
        let mut scopes = Vec::with_capacity(config.num_workers);
        let (file, line, func) = (
            config.python_context.0.clone(),
            config.python_context.1,
            config.python_context.2.clone(),
        );
        for _ in 0..config.num_workers {
            let ctx = env.threads().spawn(ThreadRole::DataLoader);
            // Workers sit inside the loader's Python function for their
            // whole lifetime.
            scopes.push(python.frame(&ctx, &file, line, &func));
            workers.push(ctx);
        }
        DataLoader {
            env: env.clone(),
            config,
            workers,
            iteration: AtomicU64::new(0),
            _scopes: scopes,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DataLoaderConfig {
        &self.config
    }

    /// Worker thread contexts (for samplers/tests).
    pub fn workers(&self) -> &[Arc<ThreadCtx>] {
        &self.workers
    }

    /// Loads one batch: accounts CPU work on every worker (in parallel)
    /// and advances the virtual clock by the batch's wall-clock span.
    /// Returns that span.
    pub fn load_batch(&self) -> TimeNs {
        let iteration = self.iteration.fetch_add(1, Ordering::SeqCst);
        let total_work =
            TimeNs(self.config.per_item_cpu.as_nanos() * self.config.items_per_batch as u64);
        let parallel = self
            .config
            .num_workers
            .min(self.config.physical_cores)
            .max(1);
        let penalty = oversubscription_penalty(self.config.num_workers, self.config.physical_cores);
        let mut wall =
            TimeNs(((total_work.as_nanos() as f64 / parallel as f64) * penalty).round() as u64);
        if iteration == 0 {
            wall += self.config.first_batch_disk;
        }
        // Each worker burns its share of CPU time (plus the scheduling
        // overhead), concurrently.
        let per_worker = TimeNs(
            ((total_work.as_nanos() as f64 / self.config.num_workers as f64) * penalty).round()
                as u64,
        );
        for worker in &self.workers {
            self.env
                .account_cpu_work(worker, CpuWork::memory_bound(per_worker));
        }
        self.env.clock().advance(wall);
        wall
    }

    /// Batches loaded so far.
    pub fn iterations(&self) -> u64 {
        self.iteration.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loader(workers: usize, cores: usize) -> (DataLoader, RuntimeEnv) {
        let env = RuntimeEnv::new();
        let python = PythonSim::new(&env);
        let config = DataLoaderConfig {
            num_workers: workers,
            physical_cores: cores,
            per_item_cpu: TimeNs::from_us(100),
            items_per_batch: 60,
            first_batch_disk: TimeNs::from_ms(10),
            ..Default::default()
        };
        (DataLoader::new(&env, &python, config), env)
    }

    #[test]
    fn first_batch_pays_disk_cost() {
        let (dl, _env) = loader(6, 6);
        let first = dl.load_batch();
        let second = dl.load_batch();
        assert!(first > second);
        assert_eq!(first - second, TimeNs::from_ms(10));
    }

    #[test]
    fn oversubscribed_pool_is_slower_than_matched_pool() {
        // The §6.4 fix: 16 workers on 6 cores vs 8 workers on 6 cores.
        let (dl16, _e1) = loader(16, 6);
        let (dl8, _e2) = loader(8, 6);
        dl16.load_batch();
        dl8.load_batch();
        let t16 = dl16.load_batch();
        let t8 = dl8.load_batch();
        assert!(
            t16 > t8,
            "16 workers ({t16}) should be slower than 8 ({t8}) on 6 cores"
        );
    }

    #[test]
    fn workers_accumulate_cpu_time_under_python_context() {
        let (dl, _env) = loader(4, 6);
        dl.load_batch();
        for w in dl.workers() {
            assert!(w.cpu_time() > TimeNs::ZERO);
            let py = w.python().walk();
            assert_eq!(py.len(), 1);
            assert_eq!(py[0].function.as_ref(), "data_selection");
        }
    }

    #[test]
    fn clock_advances_by_wall_not_total_cpu() {
        let (dl, env) = loader(6, 6);
        dl.load_batch(); // absorb the one-time disk cost
        let cpu_before: u64 = dl.workers().iter().map(|w| w.cpu_time().as_nanos()).sum();
        let before = env.clock().now();
        let wall = dl.load_batch();
        assert_eq!(env.clock().now() - before, wall);
        // Total CPU across workers exceeds wall (parallelism).
        let cpu_after: u64 = dl.workers().iter().map(|w| w.cpu_time().as_nanos()).sum();
        assert!(cpu_after - cpu_before > wall.as_nanos());
    }

    #[test]
    fn penalty_is_monotonic_in_oversubscription() {
        assert_eq!(oversubscription_penalty(4, 6), 1.0);
        assert_eq!(oversubscription_penalty(6, 6), 1.0);
        let p8 = oversubscription_penalty(8, 6);
        let p16 = oversubscription_penalty(16, 6);
        assert!(p8 > 1.0);
        assert!(p16 > p8);
    }
}
