//! Incremental-snapshot correctness: for arbitrary interleavings of
//! ingestion and snapshot requests, the generation-tracked cached fold
//! must be semantically identical to a fresh full fold of all shards
//! (`cached == fresh`), under both the historical single-lock layout
//! (1 shard) and the sharded layout (16 shards).

use std::sync::Arc;

use deepcontext_core::{CallPath, Frame, Interner, MetricKind, TimeNs};
use deepcontext_profiler::{default_ingestion_shards, EventSink, ShardedSink};
use dlmonitor::EventOrigin;
use proptest::prelude::*;
use sim_gpu::{Activity, ActivityKind, ApiKind, CorrelationId, DeviceId, StreamId};

/// One step of a randomly interleaved profiling session.
#[derive(Debug, Clone)]
enum Step {
    /// A kernel launch on a thread: binds a fresh correlation id to one
    /// of a few repeating contexts.
    Launch { tid: u64, ctx: u8 },
    /// Delivers all outstanding activities as one batch (exercises
    /// resolution, two-phase pruning, and batch-boundary accounting).
    Flush,
    /// A CPU sample attributing an integer value on a thread's context.
    Sample { tid: u64, ctx: u8, value: u16 },
    /// A snapshot request — the point where cached and fresh must agree.
    Snapshot,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..6, 0u8..5).prop_map(|(tid, ctx)| Step::Launch { tid: tid + 1, ctx }),
        Just(Step::Flush).boxed(),
        (0u64..6, 0u8..5, 1u16..500).prop_map(|(tid, ctx, value)| Step::Sample {
            tid: tid + 1,
            ctx,
            value,
        }),
        Just(Step::Snapshot).boxed(),
    ]
}

fn context_path(interner: &Arc<Interner>, tid: u64, ctx: u8) -> CallPath {
    let mut path = CallPath::new();
    path.push(Frame::python(
        &format!("worker{tid}.py"),
        10,
        "step",
        interner,
    ));
    path.push(Frame::operator(&format!("aten::op{ctx}"), interner));
    path.push(Frame::gpu_kernel(
        &format!("kernel_{ctx}"),
        "module.so",
        0x100 + u64::from(ctx),
        interner,
    ));
    path
}

fn kernel_activity(corr: u64, ctx: u8) -> Activity {
    let start = TimeNs(corr * 10);
    Activity {
        correlation_id: CorrelationId(corr),
        device: DeviceId(0),
        kind: ActivityKind::Kernel {
            name: Arc::from(format!("kernel_{ctx}").as_str()),
            module: Arc::from("module.so"),
            entry_pc: 0x100 + u64::from(ctx),
            stream: StreamId(u32::from(ctx)),
            start,
            end: start + TimeNs(100 + u64::from(ctx)),
            blocks: 8,
            warps: 64,
            occupancy: 0.5,
            shared_mem_per_block: 0,
            registers_per_thread: 32,
        },
    }
}

/// Drives one interleaving against a sink with `shards` shards, checking
/// `cached == fresh` at every snapshot point and once more at the end.
fn check_interleaving(steps: &[Step], shards: usize) {
    let interner = Interner::new();
    let sink = ShardedSink::new(Arc::clone(&interner), shards);
    let mut next_corr = 1u64;
    let mut outstanding: Vec<(u64, u8)> = Vec::new();
    let mut snapshots = 0u32;

    for step in steps {
        match step {
            Step::Launch { tid, ctx } => {
                let corr = next_corr;
                next_corr += 1;
                let origin = EventOrigin {
                    tid: Some(*tid),
                    stream: Some(StreamId(u32::from(*ctx))),
                    correlation: Some(CorrelationId(corr)),
                };
                sink.gpu_launch(
                    &origin,
                    &context_path(&interner, *tid, *ctx),
                    ApiKind::LaunchKernel,
                );
                outstanding.push((corr, *ctx));
            }
            Step::Flush => {
                let batch: Vec<Activity> = outstanding
                    .drain(..)
                    .map(|(corr, ctx)| kernel_activity(corr, ctx))
                    .collect();
                sink.activity_batch(&batch);
            }
            Step::Sample { tid, ctx, value } => {
                let origin = EventOrigin {
                    tid: Some(*tid),
                    ..EventOrigin::default()
                };
                sink.cpu_sample(
                    &origin,
                    &context_path(&interner, *tid, *ctx),
                    MetricKind::CpuTime,
                    f64::from(*value),
                );
            }
            Step::Snapshot => {
                snapshots += 1;
                let cached = sink.snapshot();
                let fresh = sink.snapshot_uncached();
                prop_assert_eq!(
                    fresh.semantic_diff(&cached),
                    None,
                    "{} shards, snapshot #{}",
                    shards,
                    snapshots
                );
            }
        }
    }

    // Whatever the interleaving ended on, the consumed final snapshot
    // also matches a full fold.
    let fresh = sink.snapshot_uncached();
    let finished = sink.finish_snapshot();
    prop_assert_eq!(
        fresh.semantic_diff(&finished),
        None,
        "{} shards, finish",
        shards
    );
}

#[test]
fn epoch_complete_retires_correlation_state_without_changing_the_profile() {
    let interner = Interner::new();
    let sink = ShardedSink::new(Arc::clone(&interner), 16);
    // One big launch+activity wave, like a flush after many iterations.
    let mut batch = Vec::new();
    for corr in 1..=2000u64 {
        let ctx = (corr % 5) as u8;
        let origin = EventOrigin {
            tid: Some(corr % 7 + 1),
            stream: Some(StreamId(u32::from(ctx))),
            correlation: Some(CorrelationId(corr)),
        };
        sink.gpu_launch(
            &origin,
            &context_path(&interner, corr % 7 + 1, ctx),
            ApiKind::LaunchKernel,
        );
        batch.push(kernel_activity(corr, ctx));
    }
    sink.activity_batch(&batch);

    let before_bytes = sink.approx_bytes();
    let before = sink.snapshot();
    sink.epoch_complete();

    // Deferred correlations retired and scratch released...
    assert!(
        sink.approx_bytes() < before_bytes,
        "epoch_complete must shrink resident state: {} !< {before_bytes}",
        sink.approx_bytes()
    );
    // ...while the profile itself is untouched (and still cached: the
    // retirement does not dirty any shard's snapshot generation).
    let merges = sink.counters().snapshot_merges;
    let after = sink.snapshot();
    assert_eq!(before.semantic_diff(&after), None);
    assert_eq!(sink.counters().snapshot_merges, merges, "all shards clean");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_snapshot_equals_fresh_fold(steps in prop::collection::vec(arb_step(), 1..80)) {
        for shards in [1usize, 16, default_ingestion_shards()] {
            check_interleaving(&steps, shards);
        }
    }
}
