//! Brendan-Gregg folded-stacks format.
//!
//! One line per context: `frame;frame;frame value`, where `value` is the
//! *self* value. Interoperates with the standard flamegraph.pl /
//! speedscope toolchain.

use deepcontext_core::{FrameKind, MetricKind};

use crate::graph::{FlameGraph, FlameNode};

impl FlameGraph {
    /// Serialises to folded stacks (self values, rounded to integers).
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        let mut stack = Vec::new();
        fold(self.root(), &mut stack, &mut out);
        out
    }
}

fn fold(node: &FlameNode, stack: &mut Vec<String>, out: &mut String) {
    stack.push(node.label.replace(';', ","));
    let self_value = node.self_value().round() as u64;
    if self_value > 0 {
        out.push_str(&stack.join(";"));
        out.push(' ');
        out.push_str(&self_value.to_string());
        out.push('\n');
    }
    for child in &node.children {
        fold(child, stack, out);
    }
    stack.pop();
}

/// Parses folded stacks back into a flame graph (labelled generic frames;
/// kind information is not preserved by the format).
///
/// # Errors
///
/// Returns a message for lines without a trailing integer value.
pub fn parse_folded(text: &str, metric: MetricKind) -> Result<FlameGraph, String> {
    let mut root = FlameNode {
        label: "<root>".into(),
        kind: FrameKind::Root,
        value: 0.0,
        children: Vec::new(),
        hot: false,
        issues: Vec::new(),
    };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (path, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: missing value", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|e| format!("line {}: bad value: {e}", lineno + 1))?;
        let mut cur = &mut root;
        cur.value += value;
        for label in path.split(';') {
            let idx = match cur.children.iter().position(|c| c.label == label) {
                Some(i) => i,
                None => {
                    cur.children.push(FlameNode {
                        label: label.to_owned(),
                        kind: FrameKind::Native,
                        value: 0.0,
                        children: Vec::new(),
                        hot: false,
                        issues: Vec::new(),
                    });
                    cur.children.len() - 1
                }
            };
            cur = &mut cur.children[idx];
            cur.value += value;
        }
    }
    // The synthetic root duplicates the first real frame when every line
    // starts with the same label; collapse that common case.
    let root = if root.children.len() == 1 && root.value == root.children[0].value {
        root.children.into_iter().next().expect("one child")
    } else {
        root
    };
    Ok(FlameGraph::from_root(root, metric))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{CallingContextTree, Frame};

    fn graph() -> FlameGraph {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let a = cct.insert_path(&[
            Frame::python("a.py", 1, "main", &i),
            Frame::gpu_kernel("k1", "m.so", 0x10, &i),
        ]);
        let b = cct.insert_path(&[
            Frame::python("a.py", 1, "main", &i),
            Frame::gpu_kernel("k2", "m.so", 0x20, &i),
        ]);
        cct.attribute(a, MetricKind::GpuTime, 30.0);
        cct.attribute(b, MetricKind::GpuTime, 70.0);
        FlameGraph::top_down(&cct, MetricKind::GpuTime)
    }

    #[test]
    fn folded_lines_carry_self_values() {
        let folded = graph().to_folded();
        let mut lines: Vec<&str> = folded.lines().collect();
        lines.sort();
        assert_eq!(lines, vec!["root;a.py:1;k1 30", "root;a.py:1;k2 70"]);
    }

    #[test]
    fn folded_round_trips() {
        let original = graph();
        let folded = original.to_folded();
        let parsed = parse_folded(&folded, MetricKind::GpuTime).unwrap();
        assert_eq!(parsed.root().value, original.root().value);
        assert_eq!(parsed.to_folded(), folded);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_folded("no value here", MetricKind::GpuTime).is_err());
        assert!(parse_folded("a;b notanumber", MetricKind::GpuTime).is_err());
    }

    #[test]
    fn labels_with_semicolons_are_sanitised() {
        let mut cct = CallingContextTree::new();
        let i = cct.interner();
        let leaf = cct.insert_path(&[Frame::gpu_kernel("weird;kernel", "m.so", 0x1, &i)]);
        cct.attribute(leaf, MetricKind::GpuTime, 5.0);
        let folded = FlameGraph::top_down(&cct, MetricKind::GpuTime).to_folded();
        assert!(folded.contains("weird,kernel"));
        assert!(parse_folded(&folded, MetricKind::GpuTime).is_ok());
    }
}
