//! Simulated GPU runtime with CUPTI/RocTracer-like profiling interfaces.
//!
//! DeepContext's profiler consumes three things from the vendor layers
//! (paper §3, §4.2): *callbacks* around GPU API calls (kernel launch,
//! memcpy, malloc/free) carrying correlation IDs, *activity records*
//! delivered asynchronously in buffers after kernels complete, and
//! *instruction samples* with stall reasons for fine-grained analysis.
//! This crate reproduces exactly that contract against simulated devices:
//!
//! * [`DeviceSpec`] — analytic device models preloaded with the paper's
//!   Table 2 platforms ([`DeviceSpec::a100_sxm`], [`DeviceSpec::mi250`]);
//! * [`GpuRuntime`] — streams, per-stream timelines, a roofline+occupancy
//!   kernel cost model ([`cost`]), device memory accounting;
//! * [`CallbackData`]/[`GpuRuntime::subscribe`] — the CUPTI
//!   `cuptiSubscribe`/RocTracer `roctracer_enable_callback` analogue;
//! * [`Activity`]/[`GpuRuntime::set_activity_handler`] — buffered,
//!   flush-on-full activity delivery;
//! * [`sampling`] — deterministic instruction sampling over per-kernel
//!   [`InstructionProfile`]s.
//!
//! The same runtime serves both vendors; [`Vendor`] selects API naming
//! (`cu*` vs `hip*`) and the device model, which is how DeepContext's
//! cross-GPU portability claim is exercised.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod callback;
pub mod cost;
mod error;
mod kernel;
mod runtime;
pub mod sampling;
mod spec;

pub use activity::{Activity, ActivityKind};
pub use callback::{ApiKind, CallbackData, CallbackSite, SubscriberId};
pub use error::GpuError;
pub use kernel::{InstructionProfile, KernelDesc, LaunchConfig, MemoryPattern};
pub use runtime::{CorrelationId, DeviceId, DevicePtr, GpuRuntime, StreamId};
pub use sampling::{PcSample, SamplingConfig};
pub use spec::{DeviceSpec, Vendor};
