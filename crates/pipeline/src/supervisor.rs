//! Health-driven graceful degradation: the [`Supervisor`] state machine
//! and the [`SupervisorSink`] admission wrapper.
//!
//! The pipeline's `DropOldest` backpressure keeps producers unblocked,
//! but blind eviction biases the profile: whichever contexts happen to
//! be enqueued when a queue fills lose events, and nothing records how
//! many. The supervisor replaces that failure mode with *deterministic
//! sampled ingestion*: when the [`HealthReport`] window shows the
//! pipeline falling behind, the sink stops admitting every event and
//! admits exactly one in [`SupervisorConfig::sample_stride`], recording
//! the stride so consumers can rescale (an unbiased estimate, unlike
//! eviction); when the pipeline is drowning outright it turns the tap
//! off entirely and lets the workload run untouched.
//!
//! ```text
//!            degrade edge breached          bypass edge breached
//!            trip_streak windows            trip_streak windows
//!   Healthy ────────────────────▶ Degraded ────────────────────▶ Bypass
//!      ▲                             │  ▲                           │
//!      └─────────────────────────────┘  └───────────────────────────┘
//!        calm (signals < recover_fraction × edge)
//!        for recover_streak windows
//! ```
//!
//! Both directions have hysteresis: escalation needs
//! [`trip_streak`](SupervisorConfig::trip_streak) *consecutive* breached
//! windows, and recovery needs
//! [`recover_streak`](SupervisorConfig::recover_streak) consecutive
//! windows with every signal below
//! [`recover_fraction`](SupervisorConfig::recover_fraction) of the edge
//! it tripped on — a window hovering at the threshold flaps neither way.
//!
//! # Sampling coherence
//!
//! Degraded-mode admission is keyed on the GPU correlation id:
//! a launch is admitted iff `correlation % sample_stride == 0`, and
//! activity records are filtered by the *same* predicate — so every
//! admitted activity's correlation was bound by an admitted launch and
//! the sampled profile contains no sampling-induced orphans. Events
//! without a correlation (CPU samples) are sampled 1-in-N off a shared
//! counter. Admitted events are **not** scaled inline; the profiler
//! stamps the stride into `ProfileMeta::extra` (`supervisor.sample_rate`)
//! and estimate consumers multiply by it.
//!
//! Barriers are never sampled: `epoch_complete`, snapshots, timelines
//! and counters pass straight through in every state, so drain semantics
//! and determinism are untouched by degradation.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use deepcontext_core::{CallPath, CallingContextTree, MetricKind};
use deepcontext_telemetry::{
    journal_sites, names, Counter, Gauge, HealthReport, HealthThresholds, Journal, JournalSeverity,
    Telemetry,
};
use deepcontext_timeline::TimelineSnapshot;
use dlmonitor::EventOrigin;
use sim_gpu::{Activity, ApiKind};

use crate::sink::{EventSink, SinkCounters};

/// The supervisor's ingestion posture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SupervisorState {
    /// Every event is admitted; the fast path is one relaxed atomic
    /// load.
    Healthy = 0,
    /// Deterministic 1-in-N admission with the stride recorded for
    /// rescaling.
    Degraded = 1,
    /// Data events are discarded outright; barriers still flow.
    Bypass = 2,
}

impl SupervisorState {
    fn from_u8(v: u8) -> SupervisorState {
        match v {
            1 => SupervisorState::Degraded,
            2 => SupervisorState::Bypass,
            _ => SupervisorState::Healthy,
        }
    }

    /// The state's display name, as journaled transition events spell it.
    pub fn name(self) -> &'static str {
        match self {
            SupervisorState::Healthy => "Healthy",
            SupervisorState::Degraded => "Degraded",
            SupervisorState::Bypass => "Bypass",
        }
    }
}

/// Knobs of the [`Supervisor`] state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// The `Healthy → Degraded` edge, judged against each health window.
    pub degrade: HealthThresholds,
    /// The `Degraded → Bypass` edge. The default judges drop rate alone
    /// (its `queue_saturation` is `+∞` — a saturated queue that is *not*
    /// dropping much is what `Degraded` is for).
    pub bypass: HealthThresholds,
    /// Consecutive breached windows required to escalate one state.
    pub trip_streak: u32,
    /// Consecutive calm windows required to recover one state.
    pub recover_streak: u32,
    /// Recovery demands every signal below this fraction of the edge it
    /// tripped on, so a run hovering at the threshold cannot flap.
    pub recover_fraction: f64,
    /// Degraded-mode admission stride: one event in `sample_stride` is
    /// ingested (clamped to at least 1; 1 admits everything).
    pub sample_stride: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            degrade: HealthThresholds::default(),
            bypass: HealthThresholds {
                drop_rate: 0.25,
                queue_saturation: f64::INFINITY,
            },
            trip_streak: 2,
            recover_streak: 3,
            recover_fraction: 0.5,
            sample_stride: 8,
        }
    }
}

impl SupervisorConfig {
    /// Whether every signal of `report` sits below `fraction` of this
    /// edge — the calm test recovery requires.
    fn calm(edge: &HealthThresholds, fraction: f64, report: &HealthReport) -> bool {
        report.drop_rate < edge.drop_rate * fraction
            && report.queue_saturation < edge.queue_saturation * fraction
    }
}

/// Telemetry handles the supervisor publishes through when the profiler
/// runs with self-telemetry on.
struct SupervisorTelemetry {
    transitions: Arc<Counter>,
    state: Arc<Gauge>,
    sampled: Arc<Counter>,
    rejected: Arc<Counter>,
    bypassed: Arc<Counter>,
}

/// A point-in-time copy of the supervisor's counters, for stats
/// surfaces and the profiler's `ProfileMeta::extra` stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorStatus {
    /// Current state as its `u8` code (0 = Healthy, 1 = Degraded,
    /// 2 = Bypass).
    pub state: u8,
    /// State transitions taken (every edge counts, both directions).
    pub transitions: u64,
    /// Health windows observed while not `Healthy`.
    pub degraded_windows: u64,
    /// The configured degraded-mode admission stride.
    pub sample_stride: u64,
    /// Events admitted by the 1-in-N sampler while `Degraded`.
    pub sampled_events: u64,
    /// Events rejected by the sampler while `Degraded`.
    pub rejected_events: u64,
    /// Events discarded while `Bypass`.
    pub bypassed_events: u64,
}

/// The `Healthy → Degraded → Bypass` state machine. Feed it one
/// [`HealthReport`] per telemetry window via [`observe`](Self::observe);
/// read the posture with [`state`](Self::state). All methods take
/// `&self` — the machine is shared between the profiler (observing) and
/// the [`SupervisorSink`] (admitting) as an `Arc`.
pub struct Supervisor {
    config: SupervisorConfig,
    state: AtomicU8,
    /// Consecutive breached windows toward the next escalation.
    trip_run: AtomicU32,
    /// Consecutive calm windows toward the next recovery.
    recover_run: AtomicU32,
    transitions: AtomicU64,
    degraded_windows: AtomicU64,
    sampled: AtomicU64,
    rejected: AtomicU64,
    bypassed: AtomicU64,
    /// Round-robin counter sampling correlation-less events.
    uncorrelated: AtomicU64,
    telemetry: Option<SupervisorTelemetry>,
    /// Incident journal (`None` = journaling off). Transitions are
    /// recorded with the `HealthReport` evidence that tripped them.
    journal: Option<Arc<Journal>>,
    /// Journal-clock timestamp of the first departure from `Healthy`
    /// (0 = never left, or journaling off). Stamped into
    /// `ProfileMeta::extra` so header-only listings can spot when a run
    /// first degraded without loading the journal.
    first_degraded_ns: AtomicU64,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("config", &self.config)
            .field("status", &self.status())
            .finish()
    }
}

impl Supervisor {
    /// A supervisor with no telemetry sink.
    pub fn new(config: SupervisorConfig) -> Arc<Supervisor> {
        Supervisor::with_telemetry(config, None)
    }

    /// A supervisor that mirrors its transitions and admission counters
    /// into `telemetry` when provided.
    pub fn with_telemetry(
        config: SupervisorConfig,
        telemetry: Option<&Telemetry>,
    ) -> Arc<Supervisor> {
        Supervisor::with_journal(config, telemetry, None)
    }

    /// [`with_telemetry`](Self::with_telemetry) plus the incident
    /// journal: every state transition is then recorded as a
    /// `supervisor.transition` event carrying the `HealthReport`
    /// evidence that tripped it (or `forced`, for operator overrides),
    /// and the first departure from `Healthy` stamps
    /// [`first_degraded_ns`](Self::first_degraded_ns).
    pub fn with_journal(
        config: SupervisorConfig,
        telemetry: Option<&Telemetry>,
        journal: Option<Arc<Journal>>,
    ) -> Arc<Supervisor> {
        let config = SupervisorConfig {
            sample_stride: config.sample_stride.max(1),
            trip_streak: config.trip_streak.max(1),
            recover_streak: config.recover_streak.max(1),
            ..config
        };
        let telemetry = telemetry.map(|t| {
            let state = t.gauge(names::SUPERVISOR_STATE, &[]);
            state.set(SupervisorState::Healthy as u8 as u64);
            SupervisorTelemetry {
                transitions: t.counter(names::SUPERVISOR_TRANSITIONS, &[]),
                state,
                sampled: t.counter(names::SUPERVISOR_SAMPLED_EVENTS, &[]),
                rejected: t.counter(names::SUPERVISOR_REJECTED_EVENTS, &[]),
                bypassed: t.counter(names::SUPERVISOR_BYPASSED_EVENTS, &[]),
            }
        });
        Arc::new(Supervisor {
            config,
            state: AtomicU8::new(SupervisorState::Healthy as u8),
            trip_run: AtomicU32::new(0),
            recover_run: AtomicU32::new(0),
            transitions: AtomicU64::new(0),
            degraded_windows: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            bypassed: AtomicU64::new(0),
            uncorrelated: AtomicU64::new(0),
            telemetry,
            journal,
            first_degraded_ns: AtomicU64::new(0),
        })
    }

    /// Journal-clock timestamp of the run's first departure from
    /// `Healthy` — `None` while the run never degraded (or journaling is
    /// off, which leaves the supervisor without a clock to stamp from).
    pub fn first_degraded_ns(&self) -> Option<u64> {
        match self.first_degraded_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(ns),
        }
    }

    /// The configuration the supervisor was built with (strides and
    /// streaks clamped to at least 1).
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// Current posture. One relaxed load — this is the admission fast
    /// path.
    pub fn state(&self) -> SupervisorState {
        SupervisorState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// Counter snapshot.
    pub fn status(&self) -> SupervisorStatus {
        SupervisorStatus {
            state: self.state.load(Ordering::Relaxed),
            transitions: self.transitions.load(Ordering::Relaxed),
            degraded_windows: self.degraded_windows.load(Ordering::Relaxed),
            sample_stride: self.config.sample_stride,
            sampled_events: self.sampled.load(Ordering::Relaxed),
            rejected_events: self.rejected.load(Ordering::Relaxed),
            bypassed_events: self.bypassed.load(Ordering::Relaxed),
        }
    }

    /// Feeds one health window into the state machine, escalating or
    /// recovering at most one state per call. Returns the state after
    /// the observation.
    pub fn observe(&self, report: &HealthReport) -> SupervisorState {
        let state = self.state();
        if state != SupervisorState::Healthy {
            self.degraded_windows.fetch_add(1, Ordering::Relaxed);
        }
        let (trip_edge, next_up) = match state {
            SupervisorState::Healthy => (Some(&self.config.degrade), SupervisorState::Degraded),
            SupervisorState::Degraded => (Some(&self.config.bypass), SupervisorState::Bypass),
            SupervisorState::Bypass => (None, SupervisorState::Bypass),
        };
        // The edge a state recovers across is the edge it escalated
        // over, scaled by recover_fraction.
        let (recover_edge, next_down) = match state {
            SupervisorState::Healthy => (None, SupervisorState::Healthy),
            SupervisorState::Degraded => (Some(&self.config.degrade), SupervisorState::Healthy),
            SupervisorState::Bypass => (Some(&self.config.bypass), SupervisorState::Degraded),
        };
        if let Some(edge) = trip_edge {
            if edge.breached(report) {
                let run = self.trip_run.fetch_add(1, Ordering::Relaxed) + 1;
                if run >= self.config.trip_streak {
                    self.transition_to(state, next_up, Some(report));
                    return next_up;
                }
            } else {
                self.trip_run.store(0, Ordering::Relaxed);
            }
        }
        if let Some(edge) = recover_edge {
            if SupervisorConfig::calm(edge, self.config.recover_fraction, report) {
                let run = self.recover_run.fetch_add(1, Ordering::Relaxed) + 1;
                if run >= self.config.recover_streak {
                    self.transition_to(state, next_down, Some(report));
                    return next_down;
                }
            } else {
                self.recover_run.store(0, Ordering::Relaxed);
            }
        }
        state
    }

    /// Jams the machine into `state` (tests, benches, operator
    /// overrides). Counts as a transition when the state changes.
    pub fn force_state(&self, state: SupervisorState) {
        let from = self.state();
        if from != state {
            self.transition_to(from, state, None);
        }
    }

    fn transition_to(
        &self,
        from: SupervisorState,
        state: SupervisorState,
        evidence: Option<&HealthReport>,
    ) {
        self.state.store(state as u8, Ordering::Relaxed);
        self.trip_run.store(0, Ordering::Relaxed);
        self.recover_run.store(0, Ordering::Relaxed);
        self.transitions.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.transitions.add(1);
            t.state.set(state as u8 as u64);
        }
        if let Some(journal) = &self.journal {
            if state != SupervisorState::Healthy {
                // First departure from Healthy, in the journal's clock
                // domain (shared with telemetry when both are on).
                let _ = self.first_degraded_ns.compare_exchange(
                    0,
                    journal.now_ns().max(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
            // Escalations warn; recoveries (and operator overrides back
            // toward Healthy) are expected lifecycle.
            let severity = if state as u8 > from as u8 {
                JournalSeverity::Warn
            } else {
                JournalSeverity::Info
            };
            match evidence {
                Some(report) => journal.record(
                    severity,
                    journal_sites::SUPERVISOR_TRANSITION,
                    &[
                        ("from", from.name()),
                        ("to", state.name()),
                        ("drop_rate", &format!("{:.6}", report.drop_rate)),
                        (
                            "queue_saturation",
                            &format!("{:.6}", report.queue_saturation),
                        ),
                    ],
                ),
                None => journal.record(
                    severity,
                    journal_sites::SUPERVISOR_TRANSITION,
                    &[
                        ("from", from.name()),
                        ("to", state.name()),
                        ("forced", "true"),
                    ],
                ),
            }
        }
    }

    /// Whether an event carrying `correlation` is admitted in the
    /// current state. Also maintains the admission counters.
    fn admit_correlated(&self, correlation: u64) -> bool {
        match self.state() {
            SupervisorState::Healthy => true,
            SupervisorState::Degraded => {
                self.note_sampled(correlation.is_multiple_of(self.config.sample_stride), 1)
            }
            SupervisorState::Bypass => self.note_bypassed(1),
        }
    }

    /// Whether a correlation-less event is admitted, sampling off the
    /// shared round-robin counter.
    fn admit_uncorrelated(&self) -> bool {
        match self.state() {
            SupervisorState::Healthy => true,
            SupervisorState::Degraded => {
                let n = self.uncorrelated.fetch_add(1, Ordering::Relaxed);
                self.note_sampled(n.is_multiple_of(self.config.sample_stride), 1)
            }
            SupervisorState::Bypass => self.note_bypassed(1),
        }
    }

    fn note_sampled(&self, admitted: bool, weight: u64) -> bool {
        if admitted {
            self.sampled.fetch_add(weight, Ordering::Relaxed);
            if let Some(t) = &self.telemetry {
                t.sampled.add(weight);
            }
        } else {
            self.rejected.fetch_add(weight, Ordering::Relaxed);
            if let Some(t) = &self.telemetry {
                t.rejected.add(weight);
            }
        }
        admitted
    }

    fn note_bypassed(&self, weight: u64) -> bool {
        self.bypassed.fetch_add(weight, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.bypassed.add(weight);
        }
        false
    }
}

/// An [`EventSink`] decorator that enforces the supervisor's posture in
/// front of any inner sink. Data events are admitted per the state
/// machine; barriers, snapshots, timelines and counters always delegate.
pub struct SupervisorSink {
    inner: Arc<dyn EventSink>,
    supervisor: Arc<Supervisor>,
}

impl SupervisorSink {
    /// Wraps `inner` under `supervisor`'s admission control.
    pub fn new(inner: Arc<dyn EventSink>, supervisor: Arc<Supervisor>) -> Arc<SupervisorSink> {
        Arc::new(SupervisorSink { inner, supervisor })
    }

    /// The shared state machine (feed it health windows, read its
    /// status).
    pub fn supervisor(&self) -> &Arc<Supervisor> {
        &self.supervisor
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &Arc<dyn EventSink> {
        &self.inner
    }

    fn admit_origin(&self, origin: &EventOrigin) -> bool {
        match origin.correlation {
            Some(corr) => self.supervisor.admit_correlated(corr.0),
            None => self.supervisor.admit_uncorrelated(),
        }
    }

    /// Filters an activity batch by the same correlation predicate the
    /// launch path used, so sampled batches resolve against sampled
    /// bindings with zero sampling-induced orphans. Returns `None` when
    /// the whole batch is admitted unchanged (the Healthy fast path —
    /// no copy).
    fn filter_batch(&self, batch: &[Activity]) -> Option<Vec<Activity>> {
        match self.supervisor.state() {
            SupervisorState::Healthy => None,
            SupervisorState::Degraded => {
                let stride = self.supervisor.config.sample_stride;
                let kept: Vec<Activity> = batch
                    .iter()
                    .filter(|a| a.correlation_id.0 % stride == 0)
                    .cloned()
                    .collect();
                self.supervisor.note_sampled(true, kept.len() as u64);
                self.supervisor
                    .note_sampled(false, (batch.len() - kept.len()) as u64);
                Some(kept)
            }
            SupervisorState::Bypass => {
                self.supervisor.note_bypassed(batch.len() as u64);
                Some(Vec::new())
            }
        }
    }
}

impl EventSink for SupervisorSink {
    fn gpu_launch(&self, origin: &EventOrigin, path: &CallPath, api: ApiKind) {
        if self.admit_origin(origin) {
            self.inner.gpu_launch(origin, path, api);
        }
    }

    fn gpu_launch_owned(&self, origin: &EventOrigin, path: CallPath, api: ApiKind) {
        if self.admit_origin(origin) {
            self.inner.gpu_launch_owned(origin, path, api);
        }
    }

    fn activity_batch(&self, batch: &[Activity]) {
        match self.filter_batch(batch) {
            None => self.inner.activity_batch(batch),
            Some(kept) if kept.is_empty() => {}
            Some(kept) => self.inner.activity_batch_owned(kept),
        }
    }

    fn activity_batch_owned(&self, batch: Vec<Activity>) {
        match self.filter_batch(&batch) {
            None => self.inner.activity_batch_owned(batch),
            Some(kept) if kept.is_empty() => {}
            Some(kept) => self.inner.activity_batch_owned(kept),
        }
    }

    fn epoch_complete(&self) {
        self.inner.epoch_complete();
    }

    fn cpu_sample(&self, origin: &EventOrigin, path: &CallPath, metric: MetricKind, value: f64) {
        if self.supervisor.admit_uncorrelated() {
            self.inner.cpu_sample(origin, path, metric, value);
        }
    }

    fn cpu_sample_owned(
        &self,
        origin: &EventOrigin,
        path: CallPath,
        metric: MetricKind,
        value: f64,
    ) {
        if self.supervisor.admit_uncorrelated() {
            self.inner.cpu_sample_owned(origin, path, metric, value);
        }
    }

    fn snapshot(&self) -> CallingContextTree {
        self.inner.snapshot()
    }

    fn with_snapshot(&self, f: &mut dyn FnMut(&CallingContextTree)) {
        self.inner.with_snapshot(f);
    }

    fn finish_snapshot(&self) -> CallingContextTree {
        self.inner.finish_snapshot()
    }

    fn timeline_snapshot(&self) -> Option<TimelineSnapshot> {
        self.inner.timeline_snapshot()
    }

    fn counters(&self) -> SinkCounters {
        self.inner.counters()
    }

    fn approx_bytes(&self) -> usize {
        self.inner.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedSink;
    use deepcontext_core::{Frame, Interner, TimeNs};
    use sim_gpu::{ActivityKind, CorrelationId, DeviceId, StreamId};

    fn breached_report() -> HealthReport {
        HealthReport {
            drop_rate: 0.5,
            queue_saturation: 1.0,
            ..HealthReport::default()
        }
    }

    fn calm_report() -> HealthReport {
        HealthReport::default()
    }

    #[test]
    fn escalation_and_recovery_both_require_streaks() {
        let sup = Supervisor::new(SupervisorConfig {
            trip_streak: 2,
            recover_streak: 2,
            ..SupervisorConfig::default()
        });
        assert_eq!(sup.state(), SupervisorState::Healthy);
        // One breached window is not enough...
        sup.observe(&breached_report());
        assert_eq!(sup.state(), SupervisorState::Healthy);
        // ...and a calm window resets the streak.
        sup.observe(&calm_report());
        sup.observe(&breached_report());
        assert_eq!(sup.state(), SupervisorState::Healthy);
        // Two consecutive breaches trip the edge.
        sup.observe(&breached_report());
        assert_eq!(sup.state(), SupervisorState::Degraded);
        // Recovery needs its own streak of calm windows.
        sup.observe(&calm_report());
        assert_eq!(sup.state(), SupervisorState::Degraded);
        sup.observe(&calm_report());
        assert_eq!(sup.state(), SupervisorState::Healthy);
        assert_eq!(sup.status().transitions, 2);
        assert_eq!(sup.status().degraded_windows, 2);
    }

    #[test]
    fn bypass_trips_on_the_stricter_edge_and_recovers_one_state() {
        let sup = Supervisor::new(SupervisorConfig {
            trip_streak: 1,
            recover_streak: 1,
            ..SupervisorConfig::default()
        });
        // Heavy drops escalate twice: Healthy → Degraded → Bypass.
        sup.observe(&breached_report());
        assert_eq!(sup.state(), SupervisorState::Degraded);
        sup.observe(&breached_report());
        assert_eq!(sup.state(), SupervisorState::Bypass);
        // Recovery is stepwise, never Bypass → Healthy directly.
        sup.observe(&calm_report());
        assert_eq!(sup.state(), SupervisorState::Degraded);
        sup.observe(&calm_report());
        assert_eq!(sup.state(), SupervisorState::Healthy);
    }

    #[test]
    fn hovering_below_the_trip_edge_but_above_recovery_flaps_neither_way() {
        let sup = Supervisor::new(SupervisorConfig {
            trip_streak: 1,
            recover_streak: 1,
            ..SupervisorConfig::default()
        });
        sup.force_state(SupervisorState::Degraded);
        // drop_rate 0.008 is below the 0.01 degrade edge but above the
        // 0.005 recovery edge (fraction 0.5): the state must hold.
        let hover = HealthReport {
            drop_rate: 0.008,
            ..HealthReport::default()
        };
        for _ in 0..5 {
            sup.observe(&hover);
        }
        assert_eq!(sup.state(), SupervisorState::Degraded);
    }

    fn kernel_launch(sink: &dyn EventSink, interner: &Arc<Interner>, corr: u64, name: &str) {
        let origin = EventOrigin {
            tid: Some(1),
            stream: Some(StreamId(0)),
            correlation: Some(CorrelationId(corr)),
        };
        let mut path = CallPath::new();
        path.push(Frame::gpu_kernel(name, "m.so", 0x1, interner));
        sink.gpu_launch(&origin, &path, ApiKind::LaunchKernel);
    }

    fn kernel_activity(corr: u64) -> Activity {
        Activity {
            correlation_id: CorrelationId(corr),
            device: DeviceId(0),
            kind: ActivityKind::Kernel {
                name: "k".into(),
                module: "m.so".into(),
                entry_pc: 0x1,
                start: TimeNs(0),
                end: TimeNs(100),
                stream: StreamId(0),
                blocks: 1,
                warps: 1,
                occupancy: 1.0,
                shared_mem_per_block: 0,
                registers_per_thread: 1,
            },
        }
    }

    #[test]
    fn degraded_admission_is_correlation_coherent_with_zero_orphans() {
        let interner = Interner::new();
        let inner = ShardedSink::new(interner.clone(), 2);
        let sup = Supervisor::new(SupervisorConfig {
            sample_stride: 4,
            ..SupervisorConfig::default()
        });
        let sink = SupervisorSink::new(inner.clone(), sup.clone());
        sup.force_state(SupervisorState::Degraded);

        for corr in 0..40u64 {
            kernel_launch(sink.as_ref(), &interner, corr, "k");
        }
        let batch: Vec<Activity> = (0..40u64).map(kernel_activity).collect();
        sink.activity_batch(&batch);
        sink.epoch_complete();

        let counters = sink.counters();
        // Exactly the corr % 4 == 0 records survive, every one resolved
        // against a binding the launch path also admitted.
        assert_eq!(counters.activities, 10);
        assert_eq!(counters.orphans, 0);
        let status = sup.status();
        // 10 launches + 10 activities admitted; 30 + 30 rejected.
        assert_eq!(status.sampled_events, 20);
        assert_eq!(status.rejected_events, 60);
        // The estimate consumers rescale by is the configured stride.
        assert_eq!(status.sample_stride, 4);
    }

    #[test]
    fn bypass_discards_data_but_barriers_and_snapshots_still_flow() {
        let interner = Interner::new();
        let inner = ShardedSink::new(interner.clone(), 2);
        let sup = Supervisor::new(SupervisorConfig::default());
        let sink = SupervisorSink::new(inner, sup.clone());

        kernel_launch(sink.as_ref(), &interner, 0, "before");
        sink.activity_batch(&[kernel_activity(0)]);
        sup.force_state(SupervisorState::Bypass);
        kernel_launch(sink.as_ref(), &interner, 4, "during");
        sink.activity_batch(&[kernel_activity(4)]);
        sink.epoch_complete();

        let counters = sink.counters();
        assert_eq!(counters.activities, 1, "bypassed activity was ingested");
        assert_eq!(sup.status().bypassed_events, 2);
        let cct = sink.snapshot();
        let has = |name: &str| {
            cct.dfs()
                .any(|n| cct.node(n).frame() == &Frame::gpu_kernel(name, "m.so", 0x1, &interner))
        };
        assert!(has("before"), "pre-bypass context missing from snapshot");
        assert!(!has("during"), "bypassed launch leaked into the profile");
    }

    #[test]
    fn healthy_passes_everything_through() {
        let interner = Interner::new();
        let inner = ShardedSink::new(interner.clone(), 2);
        let sup = Supervisor::new(SupervisorConfig::default());
        let sink = SupervisorSink::new(inner, sup.clone());
        for corr in 0..10u64 {
            kernel_launch(sink.as_ref(), &interner, corr, "k");
        }
        sink.activity_batch_owned((0..10u64).map(kernel_activity).collect());
        let origin = EventOrigin {
            tid: Some(1),
            ..EventOrigin::default()
        };
        let mut path = CallPath::new();
        path.push(Frame::operator("cpu", &interner));
        sink.cpu_sample(&origin, &path, MetricKind::CpuTime, 1.0);
        let counters = sink.counters();
        assert_eq!(counters.activities, 10);
        let status = sup.status();
        assert_eq!(status.sampled_events, 0);
        assert_eq!(status.rejected_events, 0);
        assert_eq!(status.bypassed_events, 0);
        assert_eq!(sink.snapshot().total(MetricKind::CpuTime), 1.0);
    }
}
