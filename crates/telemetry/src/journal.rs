//! The incident journal: a causal flight recorder for pipeline
//! lifecycle events.
//!
//! Numeric self-telemetry says *that* the pipeline degraded, dropped or
//! quarantined; the journal records *when, in what order, and why* — a
//! bounded, lock-striped ring of structured lifecycle events
//! ([`Journal`]): each event carries a global sequence number, a
//! monotonic timestamp, a severity, a `Sym`-interned site name and the
//! key/value evidence fields the site attached (the `HealthReport`
//! rates that tripped a supervisor transition, the shard index of a
//! quarantine, the attempt number of a store retry).
//!
//! The cost model mirrors [`Telemetry`]: a disabled journal is the
//! *absence* of the handle — instrumented code holds an
//! `Option<Arc<Journal>>` and the disabled path is one branch. Recording
//! is off the per-event hot path by construction (lifecycle events are
//! rare), and the ring is bounded: overflow evicts the oldest events
//! and counts them, preserving the conservation invariant
//! `recorded == kept + evicted` at every snapshot.
//!
//! Snapshots flatten into [`StoredJournal`] (a `deepcontext-core` type,
//! so `ProfileDb` can embed the journal tail with the profile), which
//! carries the JSONL exporter; Chrome-trace surfacing and the analyzer's
//! incident correlation build on the same stored form.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use deepcontext_core::{Interner, StoredJournal, StoredJournalEvent, Sym};

use crate::metrics::Counter;
use crate::names;
use crate::registry::Telemetry;

/// Ring stripes: recorders pick a stripe round-robin by sequence
/// number, so concurrent incident bursts rarely contend on one lock.
const STRIPES: usize = 8;

/// Default bounded capacity, in events. Incidents are rare; a run that
/// overflows this is itself a finding (and the eviction counter says
/// so).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 512;

/// Well-known journal site names, so instrumentation sites, stored
/// profiles, and analyzer rules agree on spelling.
pub mod journal_sites {
    /// Supervisor state transition (fields: `from`, `to`, and — when the
    /// transition was health-driven — the `HealthReport` evidence rates).
    pub const SUPERVISOR_TRANSITION: &str = "supervisor.transition";
    /// A worker panic quarantined a shard (field: `shard`).
    pub const SHARD_QUARANTINE: &str = "shard.quarantine";
    /// A pipeline worker thread unwound past its loop and restarted.
    pub const WORKER_RESTART: &str = "worker.restart";
    /// First `DropOldest` eviction after a clean window (field: `shard`).
    pub const DROP_STORM_START: &str = "drop.storm.start";
    /// First clean drain barrier after drops (field: `dropped`, the
    /// total lost since the storm began).
    pub const DROP_STORM_END: &str = "drop.storm.end";
    /// `ProfileStore` retry-with-backoff attempt (fields: `op`,
    /// `attempt`, `error`).
    pub const STORE_RETRY: &str = "store.retry";
    /// Worker pool paused (operator quiesce).
    pub const PIPELINE_PAUSE: &str = "pipeline.pause";
    /// Worker pool resumed.
    pub const PIPELINE_RESUME: &str = "pipeline.resume";
    /// A flush boundary (epoch barrier) completed — the barrier-anchored
    /// event both ingestion modes record identically.
    pub const PIPELINE_EPOCH: &str = "pipeline.epoch";
    /// A drain barrier that actually waited on the worker pool.
    pub const PIPELINE_DRAIN: &str = "pipeline.drain";
    /// A fault-injection point fired (fields: `name`, optional `at`).
    pub const FAILPOINT_FIRE: &str = "failpoint.fire";

    /// Every built-in site, in declaration order. [`Journal::new`]
    /// pre-interns this vocabulary so *which* sites a run happens to
    /// fire cannot perturb downstream symbol tables — the timeline's
    /// name table is an interner snapshot, and sync vs async runs
    /// journal different lifecycle sites by design (only async drains).
    ///
    /// [`Journal::new`]: super::Journal::new
    pub const ALL: &[&str] = &[
        SUPERVISOR_TRANSITION,
        SHARD_QUARANTINE,
        WORKER_RESTART,
        DROP_STORM_START,
        DROP_STORM_END,
        STORE_RETRY,
        PIPELINE_PAUSE,
        PIPELINE_RESUME,
        PIPELINE_EPOCH,
        PIPELINE_DRAIN,
        FAILPOINT_FIRE,
    ];
}

/// Event severity. Discriminants are the stored byte
/// ([`deepcontext_core::severity_label`] renders them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum JournalSeverity {
    /// Expected lifecycle (barriers, pauses, recoveries).
    Info = 0,
    /// Degraded but operating (transitions, drop storms, retries).
    Warn = 1,
    /// Faults (quarantines, exhausted retries, failpoint fires).
    Error = 2,
}

/// Journal knobs (the `ProfilerConfig::journal` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Whether lifecycle events are journaled at all. Off by default:
    /// the disabled path is an `Option` branch per site.
    pub enabled: bool,
    /// Bounded ring capacity, in events (rounded up to a stripe
    /// multiple). Overflow evicts oldest and counts the eviction.
    pub capacity: usize,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            enabled: false,
            capacity: DEFAULT_JOURNAL_CAPACITY,
        }
    }
}

impl JournalConfig {
    /// An enabled configuration at the default capacity.
    pub fn enabled() -> Self {
        JournalConfig {
            enabled: true,
            ..JournalConfig::default()
        }
    }
}

/// Whether the `DEEPCONTEXT_JOURNAL` environment override asks for the
/// incident journal (`1` / `true` / `on`, case-insensitive). Unset or
/// anything else means off — the journal is strictly opt-in.
pub fn default_journal_enabled() -> bool {
    std::env::var("DEEPCONTEXT_JOURNAL")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false)
}

/// The default journal configuration, honouring the
/// `DEEPCONTEXT_JOURNAL` environment override CI uses to run the whole
/// suite with the journal off (unset, the default) and on (`=1`).
pub fn default_journal_config() -> JournalConfig {
    JournalConfig {
        enabled: default_journal_enabled(),
        ..JournalConfig::default()
    }
}

/// One event in the live ring. Site names are interned [`Sym`] handles;
/// snapshotting resolves them into a compact per-journal name table.
#[derive(Debug, Clone)]
struct Event {
    seq: u64,
    ts_ns: u64,
    severity: JournalSeverity,
    site: Sym,
    fields: Vec<(String, String)>,
}

/// Mirror counters + the shared clock, attached when telemetry is on so
/// `deepcontext_journal_*` series appear in scrapes and journal
/// timestamps share the self-timeline's epoch.
#[derive(Debug)]
struct JournalTelemetry {
    telemetry: Telemetry,
    recorded: Arc<Counter>,
    evicted: Arc<Counter>,
}

/// The bounded, lock-striped incident ring (see the [module
/// docs](self)). Shared via `Arc` between the supervisor, both sink
/// layers, the profile store and the profiler; disabled journaling is
/// the absence of the `Arc`.
#[derive(Debug)]
pub struct Journal {
    interner: Arc<Interner>,
    stripes: Vec<Mutex<VecDeque<Event>>>,
    per_stripe: usize,
    seq: AtomicU64,
    recorded: AtomicU64,
    evicted: AtomicU64,
    /// Clock fallback when no telemetry session is attached.
    epoch: Instant,
    telemetry: Option<JournalTelemetry>,
}

impl Journal {
    /// A fresh ring bounded at `capacity` events (rounded up to a
    /// stripe multiple), interning site names through `interner`.
    pub fn new(interner: Arc<Interner>, capacity: usize) -> Journal {
        // Pre-intern the built-in vocabulary: symbol tables captured
        // downstream (the timeline's name table is an interner
        // snapshot) must not depend on which sites this run fired.
        for site in journal_sites::ALL {
            interner.intern(site);
        }
        let per_stripe = capacity.div_ceil(STRIPES).max(1);
        Journal {
            interner,
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(VecDeque::with_capacity(per_stripe.min(64))))
                .collect(),
            per_stripe,
            seq: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            epoch: Instant::now(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry session: the journal mirrors its
    /// conservation counters into `deepcontext_journal_*` series and
    /// adopts the session's epoch, so journal timestamps and
    /// self-timeline intervals share one time domain.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Journal {
        self.telemetry = Some(JournalTelemetry {
            recorded: telemetry.counter(names::JOURNAL_RECORDED, &[]),
            evicted: telemetry.counter(names::JOURNAL_EVICTED, &[]),
            telemetry: telemetry.clone(),
        });
        self
    }

    /// Builds a shared handle from a config: `Some` when enabled,
    /// `None` otherwise — callers store the `Option` and branch on it.
    pub fn from_config(
        config: &JournalConfig,
        interner: &Arc<Interner>,
        telemetry: Option<&Telemetry>,
    ) -> Option<Arc<Journal>> {
        config.enabled.then(|| {
            let journal = Journal::new(Arc::clone(interner), config.capacity);
            Arc::new(match telemetry {
                Some(t) => journal.with_telemetry(t),
                None => journal,
            })
        })
    }

    /// Nanoseconds since the journal's epoch — the telemetry session's
    /// epoch when one is attached (so incidents line up with
    /// self-timeline intervals), the journal's own otherwise.
    pub fn now_ns(&self) -> u64 {
        match &self.telemetry {
            Some(t) => t.telemetry.now_ns(),
            None => u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// Records one lifecycle event: assigns the next global sequence
    /// number, stamps the monotonic clock, interns the site name and
    /// appends to the ring (evicting the stripe's oldest event when
    /// full). Striping is round-robin by sequence number, so the kept
    /// set under overflow is within one stripe's grain of the globally
    /// newest events.
    pub fn record(&self, severity: JournalSeverity, site: &str, fields: &[(&str, &str)]) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let event = Event {
            seq,
            ts_ns: self.now_ns(),
            severity,
            site: self.interner.intern(site),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        };
        let mut stripe = self.stripes[(seq as usize) % STRIPES].lock();
        if stripe.len() >= self.per_stripe {
            stripe.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &self.telemetry {
                t.evicted.add(1);
            }
        }
        stripe.push_back(event);
        drop(stripe);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.recorded.add(1);
        }
    }

    /// Events recorded over the journal's lifetime (kept + evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted by ring overflow.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Events currently held in the ring.
    pub fn kept(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// Flattens the ring into its persistent form: kept events in seq
    /// order, site names resolved into a compact table, and the
    /// conservation counters (`recorded == kept + evicted`).
    pub fn snapshot(&self) -> StoredJournal {
        let mut events: Vec<Event> = Vec::with_capacity(self.kept());
        // `recorded` is read *before* the stripes are drained: recording
        // appends to the stripe first and counts after, so any event the
        // drain sees beyond the count is newer than the snapshot point
        // and is truncated away. `evicted` is then *derived* from what
        // was actually kept rather than read from its counter, so the
        // conservation invariant holds exactly even when a racing
        // recorder evicts an already-counted event mid-snapshot.
        let recorded = self.recorded();
        for stripe in &self.stripes {
            events.extend(stripe.lock().iter().cloned());
        }
        events.sort_by_key(|e| e.seq);
        events.truncate(recorded as usize);
        let evicted = recorded - events.len() as u64;
        let mut names: Vec<Arc<str>> = Vec::new();
        let mut index_of = std::collections::HashMap::new();
        let events = events
            .into_iter()
            .map(|e| {
                let site = *index_of.entry(e.site).or_insert_with(|| {
                    names.push(self.interner.resolve(e.site));
                    (names.len() - 1) as u32
                });
                StoredJournalEvent {
                    seq: e.seq,
                    ts_ns: e.ts_ns,
                    severity: e.severity as u8,
                    site,
                    fields: e.fields,
                }
            })
            .collect();
        StoredJournal {
            events,
            names,
            recorded,
            evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(capacity: usize) -> Journal {
        Journal::new(Interner::new(), capacity)
    }

    #[test]
    fn events_carry_sites_fields_and_monotonic_order() {
        let j = journal(64);
        j.record(
            JournalSeverity::Warn,
            journal_sites::SHARD_QUARANTINE,
            &[("shard", "3")],
        );
        j.record(JournalSeverity::Info, journal_sites::PIPELINE_EPOCH, &[]);
        let snap = j.snapshot();
        assert_eq!(snap.event_count(), 2);
        assert_eq!(snap.recorded, 2);
        assert_eq!(snap.evicted, 0);
        assert_eq!(snap.events[0].seq, 1);
        assert_eq!(snap.events[1].seq, 2);
        assert!(snap.events[1].ts_ns >= snap.events[0].ts_ns);
        assert_eq!(
            snap.site_name(&snap.events[0]),
            Some(journal_sites::SHARD_QUARANTINE)
        );
        assert_eq!(snap.events[0].severity, 1);
        assert_eq!(
            snap.events[0].fields,
            vec![("shard".to_string(), "3".to_string())]
        );
        assert!(snap.has_site(journal_sites::PIPELINE_EPOCH));
    }

    #[test]
    fn overflow_evicts_oldest_and_conserves_counts() {
        // Capacity rounds up to a stripe multiple; record far past it.
        let j = journal(16);
        for i in 0..1000u64 {
            j.record(
                JournalSeverity::Info,
                journal_sites::PIPELINE_DRAIN,
                &[("i", &i.to_string())],
            );
        }
        let snap = j.snapshot();
        assert_eq!(snap.recorded, 1000);
        assert!(snap.evicted > 0, "the ring must have overflowed");
        assert_eq!(
            snap.recorded,
            snap.event_count() as u64 + snap.evicted,
            "conservation: recorded == kept + evicted"
        );
        assert_eq!(j.kept() as u64 + j.evicted(), j.recorded());
        // The kept tail is the newest events, in seq order.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seq-sorted");
        assert_eq!(*seqs.last().unwrap(), 1000, "newest event kept");
    }

    #[test]
    fn concurrent_recorders_conserve_and_keep_distinct_seqs() {
        let j = Arc::new(journal(32));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let j = Arc::clone(&j);
                scope.spawn(move || {
                    for _ in 0..500 {
                        j.record(
                            JournalSeverity::Info,
                            journal_sites::PIPELINE_DRAIN,
                            &[("t", &t.to_string())],
                        );
                    }
                });
            }
        });
        let snap = j.snapshot();
        assert_eq!(snap.recorded, 2000);
        assert_eq!(snap.recorded, snap.event_count() as u64 + snap.evicted);
        let mut seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        let before = seqs.len();
        seqs.dedup();
        assert_eq!(seqs.len(), before, "sequence numbers are unique");
    }

    #[test]
    fn telemetry_mirror_counts_and_shares_the_clock() {
        let t = Telemetry::new();
        let j = journal(8).with_telemetry(&t);
        for _ in 0..20 {
            j.record(JournalSeverity::Error, journal_sites::FAILPOINT_FIRE, &[]);
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter_total(names::JOURNAL_RECORDED), 20);
        assert_eq!(
            snap.counter_total(names::JOURNAL_EVICTED),
            j.evicted(),
            "mirror tracks the ring's eviction count"
        );
        assert!(j.evicted() > 0);
        // The shared clock: journal time is telemetry time.
        let a = t.now_ns();
        let b = j.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn from_config_gates_construction() {
        let interner = Interner::new();
        assert!(Journal::from_config(&JournalConfig::default(), &interner, None).is_none());
        let j = Journal::from_config(&JournalConfig::enabled(), &interner, None)
            .expect("enabled config builds");
        j.record(JournalSeverity::Info, journal_sites::PIPELINE_PAUSE, &[]);
        assert_eq!(j.recorded(), 1);
    }

    #[test]
    fn snapshot_jsonl_round_trips_site_names() {
        let j = journal(64);
        j.record(
            JournalSeverity::Warn,
            journal_sites::STORE_RETRY,
            &[("op", "save"), ("attempt", "1")],
        );
        let jsonl = j.snapshot().to_jsonl();
        assert!(jsonl.contains("\"site\":\"store.retry\""));
        assert!(jsonl.contains("\"attempt\":\"1\""));
        assert_eq!(jsonl.lines().count(), 1);
    }
}
