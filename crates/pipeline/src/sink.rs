//! The [`EventSink`] contract and the shared activity-metric mapping.
//!
//! Every collection path of the profiler — GPU launch callbacks, completed
//! activity buffers, CPU samples, PC-sampling records — terminates in an
//! [`EventSink`]. Two implementations ship in this crate: the synchronous
//! [`ShardedSink`](crate::ShardedSink) (producers attribute inline under
//! per-shard locks) and the asynchronous [`AsyncSink`](crate::AsyncSink)
//! (producers enqueue into bounded channels and a worker pool attributes).

use deepcontext_core::{CallPath, CallingContextTree, Frame, MetricKind, NodeId};
use deepcontext_timeline::TimelineSnapshot;
use dlmonitor::EventOrigin;
use sim_gpu::{Activity, ActivityKind, ApiKind};

/// Writes one activity record's metrics at its resolved context `node` —
/// the single source of truth for the activity-kind → metric mapping,
/// shared by [`ShardedSink`](crate::ShardedSink) and the benchmark's
/// single-lock baseline so throughput comparisons never drift apart
/// semantically. Returns the number of instruction samples attributed
/// (0 for non-sampling records).
pub fn attribute_activity_metrics(
    tree: &mut CallingContextTree,
    node: NodeId,
    activity: &Activity,
) -> u64 {
    match &activity.kind {
        ActivityKind::Kernel {
            start,
            end,
            blocks,
            warps,
            occupancy,
            shared_mem_per_block,
            registers_per_thread,
            ..
        } => {
            tree.attribute(node, MetricKind::GpuTime, (*end - *start).as_nanos() as f64);
            tree.attribute_exclusive(node, MetricKind::Blocks, f64::from(*blocks));
            tree.attribute_exclusive(node, MetricKind::Warps, *warps as f64);
            tree.attribute_exclusive(node, MetricKind::Occupancy, *occupancy);
            tree.attribute_exclusive(
                node,
                MetricKind::SharedMemPerBlock,
                *shared_mem_per_block as f64,
            );
            tree.attribute_exclusive(
                node,
                MetricKind::RegistersPerThread,
                f64::from(*registers_per_thread),
            );
            0
        }
        ActivityKind::Memcpy {
            bytes, start, end, ..
        } => {
            tree.attribute(node, MetricKind::MemcpyBytes, *bytes as f64);
            tree.attribute(
                node,
                MetricKind::MemcpyTime,
                (*end - *start).as_nanos() as f64,
            );
            0
        }
        ActivityKind::Malloc { bytes, .. } => {
            tree.attribute(node, MetricKind::GpuAllocBytes, *bytes as f64);
            0
        }
        ActivityKind::Free { .. } => 0,
        ActivityKind::PcSampling { samples, .. } => {
            // Extend the kernel's call path with per-PC instruction frames
            // (paper §4.2: "we will extend the call path by inserting the
            // PC of each instruction collected").
            for sample in samples {
                let child = tree.insert_child(node, &Frame::instruction(sample.pc));
                tree.attribute(child, MetricKind::InstructionSamples, 1.0);
                tree.attribute(child, MetricKind::Stall(sample.stall), 1.0);
            }
            samples.len() as u64
        }
    }
}

/// Monotonic counters a sink maintains while ingesting.
///
/// The first block is maintained by every sink; the `enqueued_events`
/// through `worker_events` block is meaningful only for asynchronous
/// pipelines ([`AsyncSink`](crate::AsyncSink)) and stays zero on
/// synchronous sinks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkCounters {
    /// Activity records attributed.
    pub activities: u64,
    /// Instruction samples attributed.
    pub instruction_samples: u64,
    /// Records that fell back to the `<unattributed>` catch-all context.
    pub orphans: u64,
    /// Peak approximate profile bytes observed at batch boundaries.
    pub peak_bytes: usize,
    /// Shard folds performed while refreshing snapshots (a cold snapshot
    /// folds every shard; warm ones fold only dirty shards).
    pub snapshot_merges: u64,
    /// Shards skipped by snapshot refreshes because their dirty
    /// generation had not advanced — direct evidence the snapshot cache
    /// is being hit.
    pub shards_skipped: u64,
    /// Events accepted into the asynchronous pipeline's shard queues
    /// (activity batches count each contained record).
    pub enqueued_events: u64,
    /// Events discarded by the `DropOldest` backpressure policy. Always
    /// zero under the default `Block` policy.
    pub dropped_events: u64,
    /// High-water mark of any one shard queue's depth, in queued
    /// messages (an activity bucket is one message).
    pub max_queue_depth: u64,
    /// Drain barriers that found work still in flight and had to wait
    /// for workers (barriers that found all queues already drained are
    /// not counted).
    pub drain_waits: u64,
    /// Worker passes that applied at least one message; together with
    /// [`worker_events`](Self::worker_events) this measures utilization:
    /// `worker_events / worker_batches` is the mean coalescing factor.
    pub worker_batches: u64,
    /// Events applied by pipeline workers.
    pub worker_events: u64,
    /// Per-shard thread-local batch deliveries performed by producers
    /// (zero when `launch_batch` is 1). With
    /// [`batched_events`](Self::batched_events), measures producer-side
    /// amortization: `batched_events / producer_flushes` is the mean
    /// events per flushed batch.
    pub producer_flushes: u64,
    /// Events that travelled through thread-local producer batches.
    pub batched_events: u64,
    /// Kernel/memcpy intervals recorded into the timeline rings (zero
    /// when `ProfilerConfig::timeline` is off).
    pub timeline_intervals: u64,
    /// Timeline intervals evicted by ring overflow — when non-zero, the
    /// timeline is a trailing window of the run, not the whole run
    /// (surfaced like the pipeline's `<dropped>` telemetry).
    pub timeline_dropped: u64,
    /// Worker panics caught by the asynchronous pipeline's fault
    /// isolation. Each one quarantines the shard whose apply panicked;
    /// an orderly run keeps this at zero.
    pub worker_panics: u64,
    /// Events that arrived at a quarantined shard and were accounted to
    /// the synthetic `<poisoned>` context instead of being attributed.
    /// Always zero on synchronous sinks.
    pub poisoned_events: u64,
}

/// Where profiler collection paths deliver their events.
///
/// Implementations must be callable from any producer thread concurrently;
/// the profiler registers one sink and never wraps it in an outer lock.
pub trait EventSink: Send + Sync {
    /// A GPU API call was intercepted at its launch site: bind
    /// `origin.correlation` to the context `path` and (for kernel
    /// launches) count the launch.
    fn gpu_launch(&self, origin: &EventOrigin, path: &CallPath, api: ApiKind);

    /// [`gpu_launch`](Self::gpu_launch) taking the path by value. Call
    /// sites that construct the `CallPath` per event (the profiler's
    /// launch callback does) should prefer this: sinks that need an
    /// owned copy — the asynchronous pipeline enqueues one — take
    /// ownership for free instead of cloning on the producer's critical
    /// path. Default: borrow-and-delegate.
    fn gpu_launch_owned(&self, origin: &EventOrigin, path: CallPath, api: ApiKind) {
        self.gpu_launch(origin, &path, api);
    }

    /// A buffer of completed asynchronous activity records.
    fn activity_batch(&self, batch: &[Activity]);

    /// [`activity_batch`](Self::activity_batch) taking the buffer by
    /// value. The GPU runtime's flush paths own the records they
    /// deliver, so sinks that keep an owned copy — the asynchronous
    /// pipeline routes records into per-shard queue messages — can
    /// move-partition instead of cloning every record (including
    /// PC-sampling payloads) on the producer's critical path. Default:
    /// borrow-and-delegate.
    fn activity_batch_owned(&self, batch: Vec<Activity>) {
        self.activity_batch(&batch);
    }

    /// A flush boundary completed: the runtime's entire completed-record
    /// backlog has been delivered, so no record referencing an
    /// already-attributed correlation can still be in flight (activity
    /// buffers deliver a kernel's trailing sampling records no later
    /// than the flush that drains the kernel). Sinks may use this to
    /// retire deferred correlation state eagerly and release batch-sized
    /// scratch, keeping resident memory proportional to live state.
    /// Asynchronous sinks additionally treat this as a drain barrier:
    /// every event enqueued before the call is attributed before it
    /// returns. Default: no-op.
    fn epoch_complete(&self) {}

    /// A CPU sample (interval timer or hardware-counter overflow) on the
    /// thread identified by `origin`.
    fn cpu_sample(&self, origin: &EventOrigin, path: &CallPath, metric: MetricKind, value: f64);

    /// [`cpu_sample`](Self::cpu_sample) taking the path by value (see
    /// [`gpu_launch_owned`](Self::gpu_launch_owned) for the rationale).
    fn cpu_sample_owned(
        &self,
        origin: &EventOrigin,
        path: CallPath,
        metric: MetricKind,
        value: f64,
    ) {
        self.cpu_sample(origin, &path, metric, value);
    }

    /// Folds the sink's state into one calling context tree.
    fn snapshot(&self) -> CallingContextTree;

    /// Runs `f` against a folded snapshot without handing out ownership.
    /// Sinks that cache their fold (see [`ShardedSink`](crate::ShardedSink))
    /// serve this by sharing the cached tree behind an `Arc` refreshed
    /// under the cache lock and *released* before `f` runs, so repeated
    /// analysis previews skip both the re-fold and the clone that
    /// [`snapshot`](Self::snapshot) pays — and concurrent readers
    /// proceed in parallel on one shared snapshot instead of queueing
    /// on the cache lock for the length of every callback.
    fn with_snapshot(&self, f: &mut dyn FnMut(&CallingContextTree)) {
        f(&self.snapshot());
    }

    /// Final snapshot at detach time: like [`snapshot`](Self::snapshot),
    /// but the sink may yield its cached fold by value instead of
    /// cloning, since no further snapshots will be requested.
    fn finish_snapshot(&self) -> CallingContextTree {
        self.snapshot()
    }

    /// The assembled timeline, when the sink records one (`None` when
    /// timeline recording is off — the default — or the sink has no
    /// timeline at all).
    ///
    /// Interval context ids are remapped into the master tree the
    /// snapshot paths observe: with the snapshot cache enabled they
    /// index into the cached master served by
    /// [`with_snapshot`](Self::with_snapshot) (stable across refreshes —
    /// the fold is append-only); with the cache disabled they index into
    /// an uncached [`snapshot`](Self::snapshot) taken at the same
    /// quiesce point with no interleaved ingestion. Asynchronous sinks
    /// run their drain barrier first, so the timeline is exactly as
    /// deterministic as the profile itself at every flush.
    fn timeline_snapshot(&self) -> Option<TimelineSnapshot> {
        None
    }

    /// Current ingestion counters.
    fn counters(&self) -> SinkCounters;

    /// Approximate resident bytes of all ingestion state.
    fn approx_bytes(&self) -> usize;
}
