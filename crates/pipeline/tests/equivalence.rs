//! Pipeline correctness: batched and asynchronous modes against the
//! unbatched synchronous oracle.
//!
//! * **`batched == unbatched` / `async == sync` equivalence**: for
//!   arbitrary interleavings of launches, activity flushes, CPU samples,
//!   epoch boundaries and snapshot requests, the [`AsyncSink`]'s and the
//!   [`BatchingSink`]'s profiles must be semantically identical (via
//!   `CallingContextTree::semantic_diff`) to a bare [`ShardedSink`] fed
//!   the same events inline — at `launch_batch` 1, 7 and 64, under both
//!   the single-shard and the 16-shard layout. Interleavings include
//!   epoch barriers and snapshots landing mid-batch, so partial-batch
//!   flushes are exercised constantly.
//! * **Drain barriers**: every snapshot observes every event enqueued
//!   (or still sitting in a thread-local batch) before it, with no
//!   explicit flush.
//! * **Backpressure**: `Block` never drops; `DropOldest` drops, counts
//!   what it dropped — including partially-flushed thread-local batches
//!   evicted whole — discards the dropped correlations' bindings, and
//!   surfaces the damage as the synthetic `<dropped>` CCT context.

use std::sync::Arc;

use deepcontext_core::{CallPath, Frame, FrameKind, Interner, MetricKind, StoredJournal, TimeNs};
use deepcontext_pipeline::{
    default_directory_map, journal_sites, AsyncSink, BackpressurePolicy, BatchingSink, EventSink,
    Failpoints, JournalConfig, PipelineConfig, ShardedSink, TelemetryConfig, TimelineConfig,
};
use dlmonitor::EventOrigin;
use proptest::prelude::*;
use sim_gpu::{Activity, ActivityKind, ApiKind, CorrelationId, DeviceId, StreamId};

/// Joins a thread and, on panic, surfaces the panic payload text in the
/// failure message instead of the opaque `Any` a bare `expect` prints.
fn join_reporting<T>(handle: std::thread::JoinHandle<T>, what: &str) -> T {
    handle.join().unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        panic!("{what} panicked: {msg}");
    })
}

fn context_path(interner: &Arc<Interner>, tid: u64, ctx: u8) -> CallPath {
    let mut path = CallPath::new();
    path.push(Frame::python(
        &format!("worker{tid}.py"),
        10,
        "step",
        interner,
    ));
    path.push(Frame::operator(&format!("aten::op{ctx}"), interner));
    path.push(Frame::gpu_kernel(
        &format!("kernel_{ctx}"),
        "module.so",
        0x100 + u64::from(ctx),
        interner,
    ));
    path
}

fn kernel_activity(corr: u64, ctx: u8) -> Activity {
    let start = TimeNs(corr * 10);
    Activity {
        correlation_id: CorrelationId(corr),
        device: DeviceId(0),
        kind: ActivityKind::Kernel {
            name: Arc::from(format!("kernel_{ctx}").as_str()),
            module: Arc::from("module.so"),
            entry_pc: 0x100 + u64::from(ctx),
            stream: StreamId(u32::from(ctx)),
            start,
            end: start + TimeNs(100 + u64::from(ctx)),
            blocks: 8,
            warps: 64,
            occupancy: 0.5,
            shared_mem_per_block: 0,
            registers_per_thread: 32,
        },
    }
}

fn launch_origin(tid: u64, ctx: u8, corr: u64) -> EventOrigin {
    EventOrigin {
        tid: Some(tid),
        stream: Some(StreamId(u32::from(ctx))),
        correlation: Some(CorrelationId(corr)),
    }
}

/// One step of a randomly interleaved profiling session.
#[derive(Debug, Clone)]
enum Step {
    /// A kernel launch on `(tid, stream=ctx)`: binds a fresh correlation
    /// to one of a few repeating contexts.
    Launch { tid: u64, ctx: u8 },
    /// Delivers all outstanding activities as one batch.
    Flush,
    /// A CPU sample attributing an integer value on a thread's context.
    Sample { tid: u64, ctx: u8, value: u16 },
    /// A flush boundary (`Profiler::flush` tail): epoch markers flow
    /// through the queues and the pipeline drains.
    Epoch,
    /// A snapshot request — the point where async and sync must agree.
    Snapshot,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..6, 0u8..5).prop_map(|(tid, ctx)| Step::Launch { tid: tid + 1, ctx }),
        Just(Step::Flush).boxed(),
        (0u64..6, 0u8..5, 1u16..500).prop_map(|(tid, ctx, value)| Step::Sample {
            tid: tid + 1,
            ctx,
            value,
        }),
        Just(Step::Epoch).boxed(),
        Just(Step::Snapshot).boxed(),
    ]
}

/// Drives one interleaving into the unbatched synchronous oracle and a
/// candidate sink — the asynchronous pipeline or the synchronous
/// batching wrapper at a given `launch_batch` — over the same shard
/// layout, checking `candidate == oracle` at every snapshot point and
/// once more at the end.
fn check_interleaving(steps: &[Step], shards: usize, async_mode: bool, launch_batch: usize) {
    // Timeline recording on: every snapshot point also asserts that the
    // candidate's interval tracks — including remapped context ids —
    // are identical to the synchronous oracle's.
    let timeline = TimelineConfig::enabled();
    let interner = Interner::new();
    let oracle = ShardedSink::with_timeline(Arc::clone(&interner), shards, true, &timeline);
    let candidate: Arc<dyn EventSink> = if async_mode {
        AsyncSink::new(
            ShardedSink::with_timeline(Arc::clone(&interner), shards, true, &timeline),
            PipelineConfig {
                launch_batch,
                ..PipelineConfig::default()
            },
        )
    } else {
        BatchingSink::new(
            ShardedSink::with_timeline(Arc::clone(&interner), shards, true, &timeline),
            launch_batch,
        )
    };
    let label = || {
        format!(
            "{} shards, {}, launch_batch {}",
            shards,
            if async_mode { "async" } else { "sync batched" },
            launch_batch
        )
    };

    let mut next_corr = 1u64;
    let mut outstanding: Vec<(u64, u8)> = Vec::new();
    let mut snapshots = 0u32;
    // Activity records with a device-time window delivered so far —
    // exactly the records that must each produce one timeline interval
    // (today the generator emits Kernel records only, but counting at
    // the delivery site keeps the final assertion honest if other
    // activity kinds join the interleaving).
    let mut intervals_delivered = 0u64;

    for step in steps {
        match step {
            Step::Launch { tid, ctx } => {
                let corr = next_corr;
                next_corr += 1;
                let origin = launch_origin(*tid, *ctx, corr);
                let path = context_path(&interner, *tid, *ctx);
                oracle.gpu_launch(&origin, &path, ApiKind::LaunchKernel);
                candidate.gpu_launch(&origin, &path, ApiKind::LaunchKernel);
                outstanding.push((corr, *ctx));
            }
            Step::Flush => {
                let batch: Vec<Activity> = outstanding
                    .drain(..)
                    .map(|(corr, ctx)| kernel_activity(corr, ctx))
                    .collect();
                intervals_delivered += batch
                    .iter()
                    .filter(|a| {
                        matches!(
                            a.kind,
                            ActivityKind::Kernel { .. } | ActivityKind::Memcpy { .. }
                        )
                    })
                    .count() as u64;
                oracle.activity_batch(&batch);
                candidate.activity_batch(&batch);
            }
            Step::Sample { tid, ctx, value } => {
                let origin = EventOrigin {
                    tid: Some(*tid),
                    ..EventOrigin::default()
                };
                let path = context_path(&interner, *tid, *ctx);
                oracle.cpu_sample(&origin, &path, MetricKind::CpuTime, f64::from(*value));
                candidate.cpu_sample(&origin, &path, MetricKind::CpuTime, f64::from(*value));
            }
            Step::Epoch => {
                oracle.epoch_complete();
                candidate.epoch_complete();
            }
            Step::Snapshot => {
                snapshots += 1;
                let s = oracle.snapshot();
                let c = candidate.snapshot();
                prop_assert_eq!(
                    s.semantic_diff(&c),
                    None,
                    "{}, snapshot #{}",
                    label(),
                    snapshots
                );
                // Timeline equivalence at the same barrier: identical
                // tracks, intervals, context ids and overflow counters.
                let st = oracle.timeline_snapshot().expect("oracle timeline on");
                let ct = candidate
                    .timeline_snapshot()
                    .expect("candidate timeline on");
                prop_assert_eq!(&st, &ct, "{}, timeline at snapshot #{}", label(), snapshots);
            }
        }
    }

    // Whatever the interleaving ended on: final folds and timelines
    // agree, and the Block policy lost nothing.
    let st = oracle.timeline_snapshot().expect("oracle timeline on");
    let ct = candidate
        .timeline_snapshot()
        .expect("candidate timeline on");
    prop_assert_eq!(&st, &ct, "{}, timeline at finish", label());
    prop_assert_eq!(
        st.recorded(),
        intervals_delivered,
        "every kernel/memcpy record produced exactly one interval"
    );
    // Interned names round-trip: each interval's `Sym` resolves through
    // its own snapshot's captured symbol table back to the launched
    // kernel's name. The comparison is over *resolved strings*, not raw
    // `Sym` ids, so it pins the contract even where the two sinks
    // interned in different orders.
    for (ot, kt) in st.tracks().iter().zip(ct.tracks().iter()) {
        for (oi, ki) in ot.intervals().iter().zip(kt.intervals().iter()) {
            let name = st.name_of(oi.name);
            prop_assert!(
                name.is_some_and(|n| n.starts_with("kernel_") || n == "memcpy"),
                "{}, oracle interval corr {} resolved to {:?}",
                label(),
                oi.correlation,
                name
            );
            prop_assert_eq!(
                name,
                ct.name_of(ki.name),
                "{}, resolved names at corr {}",
                label(),
                oi.correlation
            );
        }
    }
    // The Chrome exports resolve through those captured tables and must
    // come out byte-identical.
    prop_assert_eq!(
        st.to_chrome_trace(None),
        ct.to_chrome_trace(None),
        "{}, chrome export",
        label()
    );
    let s = oracle.finish_snapshot();
    let c = candidate.finish_snapshot();
    prop_assert_eq!(s.semantic_diff(&c), None, "{}, finish", label());
    let counters = candidate.counters();
    prop_assert_eq!(counters.dropped_events, 0);
    if async_mode {
        prop_assert_eq!(counters.worker_events, counters.enqueued_events);
    }
    prop_assert_eq!(counters.activities, oracle.counters().activities);
}

/// Reduces a journal snapshot to its barrier-anchored record: the
/// severity/field tuples of the `pipeline.epoch` events, in seq order.
/// Epoch barriers are the deterministic anchors both ingestion modes
/// share — the sync oracle journals the site inline in
/// `epoch_complete`, the async pipeline after its own drain barrier —
/// so however the pipeline interleaved around them, these subsequences
/// must come out identical.
fn epoch_record(journal: &StoredJournal) -> Vec<(u8, Vec<(String, String)>)> {
    journal
        .events_at(journal_sites::PIPELINE_EPOCH)
        .map(|e| (e.severity, e.fields.clone()))
        .collect()
}

/// The incident-journal arm of the equivalence suite: the same
/// interleaving drives a journal-bearing synchronous oracle and a
/// journal-bearing asynchronous candidate, and at every snapshot point
/// (a drain barrier) the journal must behave deterministically — two
/// reads at the same barrier are identical, event seqs are strictly
/// increasing, conservation (`recorded == kept + evicted`) holds — and
/// the barrier-anchored `pipeline.epoch` record must be identical
/// between the two modes.
fn check_journal_interleaving(steps: &[Step], shards: usize, launch_batch: usize) {
    let timeline = TimelineConfig::default();
    let journal_config = JournalConfig::enabled();
    let interner = Interner::new();
    let with_journal = |interner: &Arc<Interner>| {
        ShardedSink::with_journal(
            Arc::clone(interner),
            shards,
            true,
            &timeline,
            default_directory_map(),
            &TelemetryConfig::default(),
            Failpoints::disabled(),
            &journal_config,
        )
    };
    let oracle = with_journal(&interner);
    let oracle_journal = Arc::clone(oracle.journal().expect("journal enabled"));
    let inner = with_journal(&interner);
    let candidate_journal = Arc::clone(inner.journal().expect("journal enabled"));
    let candidate = AsyncSink::new(
        inner,
        PipelineConfig {
            launch_batch,
            ..PipelineConfig::default()
        },
    );
    let label = || format!("{shards} shards, launch_batch {launch_batch}");

    let mut next_corr = 1u64;
    let mut outstanding: Vec<(u64, u8)> = Vec::new();
    let mut snapshots = 0u32;
    for step in steps {
        match step {
            Step::Launch { tid, ctx } => {
                let corr = next_corr;
                next_corr += 1;
                let origin = launch_origin(*tid, *ctx, corr);
                let path = context_path(&interner, *tid, *ctx);
                oracle.gpu_launch(&origin, &path, ApiKind::LaunchKernel);
                candidate.gpu_launch(&origin, &path, ApiKind::LaunchKernel);
                outstanding.push((corr, *ctx));
            }
            Step::Flush => {
                let batch: Vec<Activity> = outstanding
                    .drain(..)
                    .map(|(corr, ctx)| kernel_activity(corr, ctx))
                    .collect();
                oracle.activity_batch(&batch);
                candidate.activity_batch(&batch);
            }
            Step::Sample { tid, ctx, value } => {
                let origin = EventOrigin {
                    tid: Some(*tid),
                    ..EventOrigin::default()
                };
                let path = context_path(&interner, *tid, *ctx);
                oracle.cpu_sample(&origin, &path, MetricKind::CpuTime, f64::from(*value));
                candidate.cpu_sample(&origin, &path, MetricKind::CpuTime, f64::from(*value));
            }
            Step::Epoch => {
                oracle.epoch_complete();
                candidate.epoch_complete();
            }
            Step::Snapshot => {
                snapshots += 1;
                // The snapshots themselves are the drain barriers.
                let s = oracle.snapshot();
                let c = candidate.snapshot();
                prop_assert_eq!(s.semantic_diff(&c), None, "{}, profile", label());
                for (journal, side) in [(&oracle_journal, "oracle"), (&candidate_journal, "async")]
                {
                    let first = journal.snapshot();
                    let again = journal.snapshot();
                    prop_assert_eq!(
                        &first,
                        &again,
                        "{} journal re-read at a quiesced barrier diverged ({}, snapshot #{})",
                        side,
                        label(),
                        snapshots
                    );
                    prop_assert!(
                        first.events.windows(2).all(|w| w[0].seq < w[1].seq),
                        "{} journal seqs not strictly increasing ({}, snapshot #{})",
                        side,
                        label(),
                        snapshots
                    );
                    prop_assert_eq!(
                        first.recorded,
                        first.events.len() as u64 + first.evicted,
                        "{} journal conservation ({}, snapshot #{})",
                        side,
                        label(),
                        snapshots
                    );
                }
                prop_assert_eq!(
                    epoch_record(&oracle_journal.snapshot()),
                    epoch_record(&candidate_journal.snapshot()),
                    "barrier-anchored epoch records must match sync vs async ({}, snapshot #{})",
                    label(),
                    snapshots
                );
            }
        }
    }

    let s = oracle.finish_snapshot();
    let c = candidate.finish_snapshot();
    prop_assert_eq!(s.semantic_diff(&c), None, "{}, finish", label());
    let oj = oracle_journal.snapshot();
    let cj = candidate_journal.snapshot();
    let epochs = steps
        .iter()
        .filter(|step| matches!(step, Step::Epoch))
        .count();
    prop_assert_eq!(
        oj.events_at(journal_sites::PIPELINE_EPOCH).count(),
        epochs,
        "every epoch barrier journals exactly one event ({})",
        label()
    );
    prop_assert_eq!(
        epoch_record(&oj),
        epoch_record(&cj),
        "barrier-anchored epoch records must match sync vs async at finish ({})",
        label()
    );
}

/// Drives one interleaving into the asynchronous pipeline with a
/// `worker_panic` failpoint pinned to one shard, against a synchronous
/// oracle fed only the events routing to the *other* shards. The
/// failpoint fires on every apply at the pinned shard, so the poisoned
/// set is exactly the quarantined shard's traffic and fully
/// deterministic; after injecting that tally into the oracle (the same
/// synthetic `<poisoned>` merge the quarantine drain performs), the two
/// profiles must be semantically identical at every snapshot barrier.
/// Quarantine is thereby proven perfectly contained: healthy shards
/// attribute exactly as if the poisoned shard never existed, and every
/// produced event is accounted as attributed, `<poisoned>` or dropped.
fn check_panic_interleaving(steps: &[Step], shards: usize, quarantined: usize) {
    let interner = Interner::new();
    let oracle = ShardedSink::new(Arc::clone(&interner), shards);
    let inner = ShardedSink::new(Arc::clone(&interner), shards);
    let candidate = AsyncSink::new(
        Arc::clone(&inner),
        PipelineConfig {
            // Unbatched: each launch is one queue message, so the
            // poisoned tally below is exact per event.
            launch_batch: 1,
            failpoints: Failpoints::parse(&format!("worker_panic@shard{quarantined}"))
                .expect("valid failpoint spec"),
            ..PipelineConfig::default()
        },
    );

    let mut next_corr = 1u64;
    // (correlation, ctx, launch survived — i.e. routed off the
    // quarantined shard).
    let mut outstanding: Vec<(u64, u8, bool)> = Vec::new();
    let mut expected_poisoned = 0u64;
    let mut injected = 0u64;
    let mut snapshots = 0u32;

    for step in steps {
        match step {
            Step::Launch { tid, ctx } => {
                let corr = next_corr;
                next_corr += 1;
                let origin = launch_origin(*tid, *ctx, corr);
                let path = context_path(&interner, *tid, *ctx);
                let healthy = inner.route(&origin) != quarantined;
                candidate.gpu_launch(&origin, &path, ApiKind::LaunchKernel);
                if healthy {
                    oracle.gpu_launch(&origin, &path, ApiKind::LaunchKernel);
                } else {
                    expected_poisoned += 1;
                }
                outstanding.push((corr, *ctx, healthy));
            }
            Step::Flush => {
                // Retire all pending launch messages first, so poisoned
                // launches have discarded their directory bindings and
                // every activity's route below is deterministic.
                candidate.drain();
                let mut batch = Vec::new();
                let mut kept = Vec::new();
                for (corr, ctx, _healthy) in outstanding.drain(..) {
                    let activity = kernel_activity(corr, ctx);
                    if inner.route_activity(corr) == quarantined {
                        // Routes into the quarantined queue: poisoned.
                        expected_poisoned += 1;
                    } else {
                        // Routes to a healthy shard. A poisoned
                        // launch's record arrives with its binding
                        // discarded and orphans there; feeding the
                        // oracle the same record (whose launch it never
                        // saw) orphans identically, so `<orphan>`
                        // attribution stays equivalent too.
                        kept.push(activity.clone());
                    }
                    batch.push(activity);
                }
                candidate.activity_batch(&batch);
                oracle.activity_batch(&kept);
            }
            Step::Sample { tid, ctx, value } => {
                let origin = EventOrigin {
                    tid: Some(*tid),
                    ..EventOrigin::default()
                };
                let path = context_path(&interner, *tid, *ctx);
                candidate.cpu_sample(&origin, &path, MetricKind::CpuTime, f64::from(*value));
                if inner.route(&origin) == quarantined {
                    expected_poisoned += 1;
                } else {
                    oracle.cpu_sample(&origin, &path, MetricKind::CpuTime, f64::from(*value));
                }
            }
            Step::Epoch => {
                // Flush boundaries are control flow: the quarantine
                // drain still retires them on the poisoned shard.
                oracle.epoch_complete();
                candidate.epoch_complete();
            }
            Step::Snapshot => {
                snapshots += 1;
                if expected_poisoned > injected {
                    oracle.apply_poisoned(0, expected_poisoned - injected);
                    injected = expected_poisoned;
                }
                let s = oracle.snapshot();
                let c = candidate.snapshot();
                prop_assert_eq!(
                    s.semantic_diff(&c),
                    None,
                    "shard {} quarantined, snapshot #{}",
                    quarantined,
                    snapshots
                );
            }
        }
    }

    if expected_poisoned > injected {
        oracle.apply_poisoned(0, expected_poisoned - injected);
    }
    let s = oracle.finish_snapshot();
    let c = candidate.finish_snapshot();
    prop_assert_eq!(
        s.semantic_diff(&c),
        None,
        "shard {} quarantined, finish",
        quarantined
    );

    let counters = candidate.counters();
    // Epoch markers broadcast to every shard and apply behind the same
    // fault boundary, so any data *or* epoch reaching the failpointed
    // shard trips its quarantine.
    let tripped = expected_poisoned > 0 || steps.iter().any(|step| matches!(step, Step::Epoch));
    if tripped {
        prop_assert!(
            counters.worker_panics >= 1,
            "traffic reached the failpointed shard, so a worker unwound"
        );
        prop_assert_eq!(candidate.quarantined_shards(), vec![quarantined]);
    } else {
        prop_assert_eq!(counters.worker_panics, 0);
        prop_assert!(candidate.quarantined_shards().is_empty());
    }
    prop_assert_eq!(counters.poisoned_events, expected_poisoned);
    prop_assert_eq!(counters.dropped_events, 0, "Block policy never drops");
    prop_assert_eq!(
        counters.worker_events + counters.poisoned_events + counters.dropped_events,
        counters.enqueued_events,
        "event conservation: attributed + <poisoned> + dropped == produced"
    );
    // Orphaned records (bindings discarded by the quarantine, or retired
    // by epochs) attribute under `<orphan>` on both sides identically.
    prop_assert_eq!(counters.orphans, oracle.counters().orphans);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_and_async_pipelines_equal_the_unbatched_sync_oracle(
        steps in prop::collection::vec(arb_step(), 1..80),
    ) {
        // launch_batch 1 is the unbatched degenerate case (async: the
        // historical per-event enqueue path); 7 forces frequent
        // partial-batch flushes at barriers; 64 exceeds most interleaving
        // lengths so barriers and activity deliveries do all the
        // flushing.
        for async_mode in [false, true] {
            for launch_batch in [1usize, 7, 64] {
                // 16 shards (the default layout) and 1 shard (everything
                // serializes through one shard queue/lock).
                check_interleaving(&steps, 16, async_mode, launch_batch);
                check_interleaving(&steps, 1, async_mode, launch_batch);
            }
        }
    }

    #[test]
    fn journal_barrier_events_are_deterministic_and_mode_independent(
        steps in prop::collection::vec(arb_step(), 1..80),
    ) {
        // launch_batch 1 exercises the per-event enqueue path; 7 forces
        // partial-batch flushes right at the journal's drain barriers.
        for launch_batch in [1usize, 7] {
            check_journal_interleaving(&steps, 16, launch_batch);
            check_journal_interleaving(&steps, 1, launch_batch);
        }
    }

    #[test]
    fn worker_panics_leave_healthy_shards_equivalent_to_the_sync_oracle(
        steps in prop::collection::vec(arb_step(), 1..60),
        quarantined in 0usize..4,
    ) {
        check_panic_interleaving(&steps, 4, quarantined);
    }
}

#[test]
fn snapshots_are_drain_barriers_without_explicit_flush() {
    // 8 producer threads enqueue; the reader takes a snapshot with no
    // flush in between. Every event enqueued before the snapshot call
    // must be visible in it — `with_cct` determinism under AsyncSink.
    const PRODUCERS: u64 = 8;
    const SAMPLES: u64 = 200;
    let interner = Interner::new();
    let inner = ShardedSink::new(Arc::clone(&interner), 16);
    let sink = AsyncSink::new(inner, PipelineConfig::default());

    std::thread::scope(|scope| {
        for tid in 1..=PRODUCERS {
            let sink = Arc::clone(&sink);
            let interner = Arc::clone(&interner);
            scope.spawn(move || {
                let origin = EventOrigin {
                    tid: Some(tid),
                    ..EventOrigin::default()
                };
                let path = context_path(&interner, tid, 0);
                for _ in 0..SAMPLES {
                    sink.cpu_sample(&origin, &path, MetricKind::CpuTime, 1.0);
                }
            });
        }
    });
    // All producers returned ⇒ everything is enqueued; the snapshot
    // barrier must surface every sample despite no flush having run.
    let mut total = 0.0;
    sink.with_snapshot(&mut |cct| total = cct.total(MetricKind::CpuTime));
    assert_eq!(total, (PRODUCERS * SAMPLES) as f64);
    let counters = sink.counters();
    assert_eq!(counters.dropped_events, 0, "Block policy loses nothing");
    assert_eq!(counters.enqueued_events, PRODUCERS * SAMPLES);
}

#[test]
fn epoch_complete_retires_correlation_state_without_changing_the_profile() {
    // The async analogue of the sharded sink's epoch test: trims must
    // propagate through the queues and shrink resident state while the
    // profile and its snapshot-cache generations stay untouched.
    let interner = Interner::new();
    let inner = ShardedSink::new(Arc::clone(&interner), 16);
    let sink = AsyncSink::new(Arc::clone(&inner), PipelineConfig::default());
    let mut batch = Vec::new();
    for corr in 1..=2000u64 {
        let ctx = (corr % 5) as u8;
        let tid = corr % 7 + 1;
        sink.gpu_launch(
            &launch_origin(tid, ctx, corr),
            &context_path(&interner, tid, ctx),
            ApiKind::LaunchKernel,
        );
        batch.push(kernel_activity(corr, ctx));
    }
    sink.activity_batch(&batch);

    let before = sink.snapshot();
    let before_bytes = sink.approx_bytes();
    sink.epoch_complete();

    assert!(
        sink.approx_bytes() < before_bytes,
        "epoch_complete must shrink resident state: {} !< {before_bytes}",
        sink.approx_bytes()
    );
    let merges = sink.counters().snapshot_merges;
    let after = sink.snapshot();
    assert_eq!(before.semantic_diff(&after), None);
    assert_eq!(sink.counters().snapshot_merges, merges, "all shards clean");
}

#[test]
fn drop_oldest_counts_drops_and_attributes_the_rest() {
    // 8 producers against a paused worker pool and tiny queues: the
    // DropOldest policy must engage, count every discarded event, and
    // the attributed remainder must account for exactly
    // `enqueued - dropped`.
    const PRODUCERS: u64 = 8;
    const SAMPLES: u64 = 100;
    const CAPACITY: usize = 4;
    let interner = Interner::new();
    let inner = ShardedSink::new(Arc::clone(&interner), 16);
    let sink = AsyncSink::new(
        inner,
        PipelineConfig {
            workers: 2,
            queue_capacity: CAPACITY,
            backpressure: BackpressurePolicy::DropOldest,
            // Unbatched: each sample is one queue message, so eviction
            // accounting below is exact per event.
            launch_batch: 1,
            ..PipelineConfig::default()
        },
    );

    // Paused workers make the overflow deterministic: every queue fills
    // to capacity and everything beyond it must evict.
    sink.pause();
    std::thread::scope(|scope| {
        for tid in 1..=PRODUCERS {
            let sink = Arc::clone(&sink);
            let interner = Arc::clone(&interner);
            scope.spawn(move || {
                let origin = EventOrigin {
                    tid: Some(tid),
                    ..EventOrigin::default()
                };
                let path = context_path(&interner, tid, 0);
                for _ in 0..SAMPLES {
                    sink.cpu_sample(&origin, &path, MetricKind::CpuTime, 1.0);
                }
            });
        }
    });
    sink.resume();

    let counters = sink.counters();
    assert_eq!(counters.enqueued_events, PRODUCERS * SAMPLES);
    // 8 producers over at most 8 distinct tid-keyed shards with 4 slots
    // each: the overwhelming majority must have been evicted.
    assert!(
        counters.dropped_events >= PRODUCERS * SAMPLES - (16 * CAPACITY) as u64,
        "expected heavy eviction, got {} drops",
        counters.dropped_events
    );
    assert!(
        counters.dropped_events < PRODUCERS * SAMPLES,
        "some survive"
    );
    // Exact bookkeeping: survivors and drops partition the enqueued set.
    let cct = sink.snapshot();
    let attributed = cct
        .root_metric(MetricKind::CpuTime)
        .map(|stat| stat.count)
        .unwrap_or(0);
    assert_eq!(
        attributed + counters.dropped_events,
        counters.enqueued_events
    );
    // Drop-policy attribution telemetry: the overload is visible in the
    // profile itself, as a synthetic `<dropped>` context carrying every
    // discarded event.
    assert_eq!(
        cct.total(MetricKind::DroppedEvents),
        counters.dropped_events as f64,
        "snapshot must carry the dropped-event telemetry"
    );
    assert!(cct.nodes_of_kind(FrameKind::Operator).iter().any(|n| cct
        .node(*n)
        .frame()
        .label(&interner)
        .contains("<dropped>")));
    // Depth high-water: the queues filled to capacity (the counter is
    // derived from racing enqueue/evict counters, so concurrent
    // producers on one shard can over-read by at most their number).
    assert!(counters.max_queue_depth >= CAPACITY as u64);
    assert!(counters.max_queue_depth <= (CAPACITY as u64) + PRODUCERS);
}

#[test]
fn drop_oldest_evicts_partially_flushed_batches_without_leaks() {
    // A thread-local batch flushed *before* reaching `launch_batch` (here
    // by thread quiesce) travels as one queue message; when DropOldest
    // evicts it, every contained launch must take its directory binding
    // with it, its events must be counted, and the loss must surface as
    // the synthetic `<dropped>` context.
    const PARTIAL: u64 = 5;
    let interner = Interner::new();
    let inner = ShardedSink::new(Arc::clone(&interner), 1);
    let sink = AsyncSink::new(
        Arc::clone(&inner),
        PipelineConfig {
            workers: 1,
            queue_capacity: 2,
            backpressure: BackpressurePolicy::DropOldest,
            launch_batch: 64,
            ..PipelineConfig::default()
        },
    );

    // Paused workers make the overflow deterministic.
    sink.pause();
    // A producer thread buffers a partial batch (5 < 64 events) and
    // exits: thread quiesce binds + flushes it as one batch message.
    // Explicit spawn + join (not thread::scope): JoinHandle::join waits
    // for full thread termination, which includes the thread-local
    // destructor that performs the quiesce flush.
    {
        let sink = Arc::clone(&sink);
        let interner = Arc::clone(&interner);
        let producer = std::thread::spawn(move || {
            for corr in 1..=PARTIAL {
                sink.gpu_launch(
                    &launch_origin(1, 0, corr),
                    &context_path(&interner, 1, 0),
                    ApiKind::LaunchKernel,
                );
            }
        });
        join_reporting(producer, "partial-batch producer");
    }
    assert_eq!(
        inner.directory_entries(),
        PARTIAL as usize,
        "quiesce flush must have bound the whole partial batch"
    );

    // Two full sample batches from this thread overflow the 2-slot queue:
    // the second delivery evicts the partial launch batch.
    let origin = EventOrigin {
        tid: Some(1),
        ..EventOrigin::default()
    };
    let path = context_path(&interner, 1, 0);
    for _ in 0..128 {
        sink.cpu_sample(&origin, &path, MetricKind::CpuTime, 1.0);
    }
    sink.resume();

    let counters = sink.counters();
    assert_eq!(
        counters.dropped_events, PARTIAL,
        "exactly the partial batch was evicted"
    );
    assert_eq!(counters.enqueued_events, PARTIAL + 128);
    assert!(counters.producer_flushes >= 3, "quiesce + two capacity");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while (inner.correlation_entries() != 0 || inner.directory_entries() != 0)
        && std::time::Instant::now() < deadline
    {
        std::thread::yield_now();
    }
    assert_eq!(inner.directory_entries(), 0, "evicted batch leaked routes");
    assert_eq!(inner.correlation_entries(), 0, "evicted batch leaked binds");
    let cct = sink.snapshot();
    assert_eq!(cct.total(MetricKind::DroppedEvents), PARTIAL as f64);
    assert_eq!(
        cct.root_metric(MetricKind::CpuTime).map(|s| s.count),
        Some(128),
        "both surviving sample batches were attributed"
    );
    assert_eq!(
        cct.total(MetricKind::KernelLaunches),
        0.0,
        "the evicted launches never reached the tree"
    );
}

#[test]
fn snapshot_readers_share_the_cached_master_without_queueing() {
    // Two `with_snapshot` callbacks rendezvous on a barrier *inside*
    // their closures: that can only succeed if readers run concurrently
    // on a shared snapshot. The pre-Arc design held the cache mutex for
    // the length of each callback, so this exact shape deadlocked.
    use std::sync::Barrier;
    let interner = Interner::new();
    let sink = ShardedSink::new(Arc::clone(&interner), 4);
    let origin = EventOrigin {
        tid: Some(1),
        ..EventOrigin::default()
    };
    let path = context_path(&interner, 1, 0);
    sink.cpu_sample(&origin, &path, MetricKind::CpuTime, 5.0);

    let barrier = Arc::new(Barrier::new(2));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let sink = Arc::clone(&sink);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut total = 0.0;
                sink.with_snapshot(&mut |cct| {
                    barrier.wait();
                    total = cct.total(MetricKind::CpuTime);
                });
                total
            })
        })
        .collect();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while readers.iter().any(|r| !r.is_finished()) && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert!(
        readers.iter().all(|r| r.is_finished()),
        "concurrent with_snapshot readers deadlocked on the cache lock"
    );
    for reader in readers {
        assert_eq!(join_reporting(reader, "snapshot reader"), 5.0);
    }

    // A long-lived reader must keep observing its own consistent
    // snapshot while ingestion refreshes the cache underneath it
    // (copy-on-write), and re-entering the snapshot APIs from inside a
    // callback is safe now that no lock is held around `f`.
    sink.with_snapshot(&mut |before| {
        sink.cpu_sample(&origin, &path, MetricKind::CpuTime, 7.0);
        let refreshed = sink.snapshot();
        assert_eq!(before.total(MetricKind::CpuTime), 5.0, "reader view frozen");
        assert_eq!(refreshed.total(MetricKind::CpuTime), 12.0);
    });
}

#[test]
fn single_thread_multi_stream_launches_spread_across_shards() {
    // Stream-aware routing: one producer thread fanning launches over
    // six streams must occupy several shards (the seed keyed launches by
    // thread alone, serializing this workload on one shard), and the
    // directory must still resolve every activity to the right context.
    let interner = Interner::new();
    let sink = ShardedSink::new(Arc::clone(&interner), 16);
    let mut batch = Vec::new();
    for corr in 1..=120u64 {
        let stream = (corr % 6) as u8;
        sink.gpu_launch(
            &launch_origin(1, stream, corr),
            &context_path(&interner, 1, stream),
            ApiKind::LaunchKernel,
        );
        batch.push(kernel_activity(corr, stream));
    }
    sink.activity_batch(&batch);
    assert!(
        sink.shards_occupied() > 1,
        "six streams on one thread must not serialize on one shard"
    );
    assert_eq!(sink.counters().orphans, 0, "directory routed every record");
    assert_eq!(sink.snapshot().total(MetricKind::KernelLaunches), 120.0);
}

#[test]
fn async_sink_spreads_multi_stream_launches_too() {
    // The same property through the asynchronous pipeline, where bucket
    // routing happens at enqueue time.
    let interner = Interner::new();
    let inner = ShardedSink::new(Arc::clone(&interner), 16);
    let sink = AsyncSink::new(Arc::clone(&inner), PipelineConfig::default());
    let mut batch = Vec::new();
    for corr in 1..=120u64 {
        let stream = (corr % 6) as u8;
        sink.gpu_launch(
            &launch_origin(1, stream, corr),
            &context_path(&interner, 1, stream),
            ApiKind::LaunchKernel,
        );
        batch.push(kernel_activity(corr, stream));
    }
    sink.activity_batch(&batch);
    let cct = sink.snapshot();
    assert!(inner.shards_occupied() > 1);
    assert_eq!(sink.counters().orphans, 0);
    assert_eq!(cct.total(MetricKind::KernelLaunches), 120.0);
    assert!(cct.total(MetricKind::GpuTime) > 0.0);
}
