//! A complete simulated evaluation platform: one device, both engines.

use std::sync::Arc;

use deepcontext_core::{ThreadRole, TimeNs};
use dl_framework::{DataLoader, EagerEngine, FrameworkCore, FrameworkError, JitEngine};
use sim_gpu::{DeviceId, DeviceSpec, GpuRuntime};
use sim_runtime::{RuntimeEnv, ThreadCtx, ThreadRegistry};

use crate::sink::{EagerSink, TraceSink};
use crate::{ModelCtx, Workload, WorkloadOptions};

/// Statistics from one workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Virtual wall-clock time of the run.
    pub wall: TimeNs,
    /// Accumulated device busy time.
    pub gpu_busy: TimeNs,
    /// Kernels launched.
    pub kernels: u64,
    /// Iterations executed.
    pub iterations: u32,
}

/// One evaluation platform (paper Table 2 rows): a device plus the eager
/// and JIT engines wired to it.
pub struct TestBed {
    env: RuntimeEnv,
    gpu: Arc<GpuRuntime>,
    eager: Arc<EagerEngine>,
    jit: Arc<JitEngine>,
    main: Arc<ThreadCtx>,
    device: DeviceId,
}

impl TestBed {
    /// Builds a test bed on a device model.
    pub fn new(spec: DeviceSpec) -> TestBed {
        TestBed::with_devices(vec![spec])
    }

    /// Builds a test bed over several devices (multi-GPU workloads).
    /// Both engines default to device 0; workloads place ops on other
    /// devices explicitly via `Op::on_device`.
    ///
    /// # Panics
    ///
    /// Panics when `specs` is empty.
    pub fn with_devices(specs: Vec<DeviceSpec>) -> TestBed {
        assert!(!specs.is_empty(), "a test bed needs at least one device");
        let env = RuntimeEnv::new();
        let gpu = GpuRuntime::new(env.clock().clone(), specs);
        let device = DeviceId(0);
        let eager_core = FrameworkCore::new(
            env.clone(),
            Arc::clone(&gpu),
            device,
            "/lib/libtorch_cpu.so",
            "libtorch_cuda.so",
            TimeNs(3_000),
        );
        let jit_core = FrameworkCore::new(
            env.clone(),
            Arc::clone(&gpu),
            device,
            "/lib/libjax.so",
            "libxla.so",
            TimeNs(1_000),
        );
        let eager = EagerEngine::new(Arc::clone(&eager_core));
        let jit = JitEngine::new(jit_core);
        let main = env.threads().spawn(ThreadRole::Main);
        TestBed {
            env,
            gpu,
            eager,
            jit,
            main,
            device,
        }
    }

    /// The process environment.
    pub fn env(&self) -> &RuntimeEnv {
        &self.env
    }

    /// The GPU runtime.
    pub fn gpu(&self) -> &Arc<GpuRuntime> {
        &self.gpu
    }

    /// The eager engine.
    pub fn eager(&self) -> &Arc<EagerEngine> {
        &self.eager
    }

    /// The JIT engine.
    pub fn jit(&self) -> &Arc<JitEngine> {
        &self.jit
    }

    /// The main simulated thread.
    pub fn main_thread(&self) -> &Arc<ThreadCtx> {
        &self.main
    }

    /// The device under test.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Runs `iterations` of `workload` on the eager engine.
    ///
    /// # Errors
    ///
    /// Propagates framework/GPU failures.
    pub fn run_eager(
        &self,
        workload: &dyn Workload,
        opts: &WorkloadOptions,
        iterations: u32,
    ) -> Result<RunStats, FrameworkError> {
        let _bind = ThreadRegistry::bind_current(&self.main);
        self.eager.set_grad_enabled(workload.training());
        self.prepare_streams(workload)?;
        let core = Arc::clone(self.eager.core());
        let loader = workload
            .dataloader(opts)
            .map(|config| DataLoader::new(&self.env, core.python(), config));

        let start_wall = self.env.clock().now();
        let start_busy = self.busy_all_devices()?;
        let start_kernels = self.kernels_all_devices()?;

        for _ in 0..iterations {
            let _step = core
                .python()
                .frame(&self.main, "train.py", 30, "train_step");
            if let Some(loader) = &loader {
                let _load = core
                    .python()
                    .frame(&self.main, "input_pipeline.py", 40, "next_batch");
                loader.load_batch();
            }
            let mut sink = EagerSink::new(Arc::clone(&self.eager));
            let mut ctx = ModelCtx::new(
                &mut sink,
                Arc::clone(core.python()),
                Arc::clone(&self.main),
                opts.clone(),
            );
            workload.iteration(&mut ctx)?;
            if workload.training() {
                ctx.backward()?;
            }
        }
        self.synchronize_all()?;

        Ok(RunStats {
            wall: self.env.clock().now() - start_wall,
            gpu_busy: self.busy_all_devices()? - start_busy,
            kernels: self.kernels_all_devices()? - start_kernels,
            iterations,
        })
    }

    /// Pre-creates the streams a workload declares, on every device.
    fn prepare_streams(&self, workload: &dyn Workload) -> Result<(), FrameworkError> {
        let streams = workload.streams_per_device();
        for d in 0..self.gpu.device_count() {
            self.gpu.ensure_streams(DeviceId(d as u32), streams)?;
        }
        Ok(())
    }

    /// Synchronizes every device (multi-GPU runs must drain them all).
    fn synchronize_all(&self) -> Result<(), FrameworkError> {
        for d in 0..self.gpu.device_count() {
            self.gpu.synchronize(DeviceId(d as u32))?;
        }
        Ok(())
    }

    fn busy_all_devices(&self) -> Result<TimeNs, FrameworkError> {
        let mut total = TimeNs::ZERO;
        for d in 0..self.gpu.device_count() {
            total += self.gpu.device_busy_time(DeviceId(d as u32))?;
        }
        Ok(total)
    }

    fn kernels_all_devices(&self) -> Result<u64, FrameworkError> {
        let mut total = 0;
        for d in 0..self.gpu.device_count() {
            total += self.gpu.kernel_count(DeviceId(d as u32))?;
        }
        Ok(total)
    }

    /// Runs `iterations` of `workload` on the JIT engine: trace + compile
    /// once, execute per iteration (the JAX execution model).
    ///
    /// # Errors
    ///
    /// Propagates framework/GPU failures.
    pub fn run_jit(
        &self,
        workload: &dyn Workload,
        opts: &WorkloadOptions,
        iterations: u32,
    ) -> Result<RunStats, FrameworkError> {
        let _bind = ThreadRegistry::bind_current(&self.main);
        self.prepare_streams(workload)?;
        let core = Arc::clone(self.jit.core());
        let loader = workload
            .dataloader(opts)
            .map(|config| DataLoader::new(&self.env, core.python(), config));

        let start_wall = self.env.clock().now();
        let start_busy = self.busy_all_devices()?;
        let start_kernels = self.kernels_all_devices()?;

        let graph = {
            let _trace_scope = core.python().frame(&self.main, "train.py", 22, "jit_step");
            self.jit.trace(workload.name(), |tracer| {
                let mut sink = TraceSink::new(tracer);
                let mut ctx = ModelCtx::new(
                    &mut sink,
                    Arc::clone(core.python()),
                    Arc::clone(&self.main),
                    opts.clone(),
                );
                workload.iteration(&mut ctx)?;
                if workload.training() {
                    ctx.backward()?;
                }
                Ok(())
            })?
        };
        let compiled = self.jit.compile(&graph)?;

        for _ in 0..iterations {
            let _step = core
                .python()
                .frame(&self.main, "train.py", 30, "train_step");
            if let Some(loader) = &loader {
                let _load = core
                    .python()
                    .frame(&self.main, "input_pipeline.py", 40, "next_batch");
                loader.load_batch();
            }
            compiled.execute()?;
        }
        self.synchronize_all()?;

        Ok(RunStats {
            wall: self.env.clock().now() - start_wall,
            gpu_busy: self.busy_all_devices()? - start_busy,
            kernels: self.kernels_all_devices()? - start_kernels,
            iterations,
        })
    }
}

impl std::fmt::Debug for TestBed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestBed")
            .field("device", &self.device)
            .finish()
    }
}
