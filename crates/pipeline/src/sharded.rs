//! The sharded synchronous event-ingestion sink.
//!
//! The previous design funneled every collection path through one
//! `Mutex<CallingContextTree>` plus a correlation-map mutex, so ingestion
//! throughput was capped at one core no matter how many workload threads
//! were producing events. [`ShardedSink`] removes that ceiling:
//!
//! * events are routed to one of N [`CctShard`]s **before** any lock is
//!   taken, keyed by the originating thread and stream (launches, CPU
//!   samples — see [`EventOrigin::route_key`]) or by the correlation-id's
//!   registered home shard (activity records);
//! * each shard owns a private tree + correlation map behind its own
//!   mutex, so producers on different threads proceed in parallel;
//! * a lock-striped correlation *directory* remembers which shard a
//!   correlation id was bound in, letting asynchronous activity records —
//!   which carry no thread identity — find their way home;
//! * snapshots fold the shards into one master tree and **cache** the
//!   result: every shard carries a dirty generation
//!   ([`CctShard::generation`]) advanced by each tree mutation, and a
//!   refresh re-folds only shards whose generation moved — via
//!   [`CallingContextTree::merge_incremental`], which resumes the
//!   per-shard node mapping and folds per-node metric deltas. Clean
//!   shards are skipped outright, so a warm snapshot costs O(dirty
//!   shards) instead of O(shards × tree). Correlation state stays behind
//!   in the shards for records still in flight ([`CctShard::merge_from`]
//!   exists for folds that must carry it along), and
//!   [`ShardedSink::snapshot_uncached`] keeps the historical full fold
//!   as baseline and test oracle. Memory-tight deployments can disable
//!   the cache entirely ([`ShardedSink::with_options`]): snapshots then
//!   re-fold every shard per request and the sink holds no second copy
//!   of the profile.
//!
//! The per-shard mutation entry points ([`apply_launch`],
//! [`apply_activities`], [`apply_cpu_sample`], [`epoch_complete_shard`])
//! are public so the asynchronous pipeline's workers
//! ([`AsyncSink`](crate::AsyncSink)) can drive pre-routed events into
//! individual shards; the synchronous [`EventSink`] implementation is a
//! thin route-then-apply composition of the same entry points, so the two
//! ingestion modes cannot drift apart semantically.
//!
//! A `ShardedSink` with one shard routes everything through one lock like
//! the old design (set `ingestion_shards: 1`); the ingestion benchmark in
//! `crates/bench` additionally keeps a faithful reproduction of the full
//! pre-refactor pipeline as its baseline.
//!
//! [`apply_launch`]: ShardedSink::apply_launch
//! [`apply_activities`]: ShardedSink::apply_activities
//! [`apply_cpu_sample`]: ShardedSink::apply_cpu_sample
//! [`epoch_complete_shard`]: ShardedSink::epoch_complete_shard
//! [`EventOrigin::route_key`]: dlmonitor::EventOrigin::route_key

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use deepcontext_core::failpoint::sites as fp_sites;
use deepcontext_core::{
    CallPath, CallingContextTree, CctShard, Failpoints, FoldState, Interner, Interval,
    IntervalKind, MetricKind, NodeId, Sym, TimeNs, TrackKey,
};
use deepcontext_telemetry::{
    journal_sites, Journal, JournalConfig, JournalSeverity, TelemetryConfig,
};
use deepcontext_timeline::{TimelineConfig, TimelineSink, TimelineSnapshot};
use dlmonitor::EventOrigin;
use sim_gpu::{Activity, ActivityKind, ApiKind};

use crate::batch::ProducerEvent;
use crate::directory::{mix, DirectoryMap, DirectoryMapKind, DIR_ENTRY_BYTES};
use crate::self_telemetry::PipelineTelemetry;
use crate::sink::{attribute_activity_metrics, EventSink, SinkCounters};

/// The memoized fold of all shards: the merged master tree, the
/// per-shard [`FoldState`] it was built through, and the shard dirty
/// generations it reflects. Refreshing re-folds **only** shards whose
/// generation advanced; the rest are skipped without touching their
/// trees, turning repeated snapshots from O(shards × tree) into
/// O(dirty shards).
///
/// The master lives behind an `Arc` so concurrent `with_snapshot`
/// readers *share* the refreshed tree: each reader clones the handle
/// under the cache mutex and runs its callback outside it, so many
/// analysis readers proceed in parallel instead of queueing on one lock
/// for the length of every callback. Refreshes mutate through
/// [`Arc::make_mut`]: while no reader holds the previous snapshot this
/// is in-place; a refresh racing a long-lived reader copies the tree
/// once and leaves the reader's view untouched (readers are never
/// blocked, and never observe a half-refreshed fold).
struct SnapshotCache {
    master: Arc<CallingContextTree>,
    folds: Vec<FoldState>,
    /// Generation folded per shard; `u64::MAX` = never folded (shard
    /// generations start at 0, so the first refresh folds everything).
    generations: Vec<u64>,
}

impl SnapshotCache {
    fn empty(interner: &Arc<Interner>, shards: usize) -> Self {
        SnapshotCache {
            master: Arc::new(CallingContextTree::with_interner(Arc::clone(interner))),
            folds: (0..shards).map(|_| FoldState::new()).collect(),
            generations: vec![u64::MAX; shards],
        }
    }
}

/// The sharded [`EventSink`] (see the [module docs](self)).
pub struct ShardedSink {
    interner: Arc<Interner>,
    shards: Vec<Mutex<CctShard>>,
    /// Whether snapshots go through the incremental cache. Off for
    /// memory-tight deployments: every snapshot is then a full fold and
    /// the sink never holds a second copy of the profile.
    cache_enabled: bool,
    /// Cached incremental snapshot; `None` until the first snapshot is
    /// requested (and again after `finish_snapshot` consumes it).
    cache: Mutex<Option<SnapshotCache>>,
    /// Per-shard bounded interval rings, recorded while kernel/memcpy
    /// records are attributed (i.e. under the shard lock, in both
    /// ingestion modes). `None` when timeline recording is off — the
    /// aggregate-only pipeline then pays nothing for it.
    timeline: Option<TimelineSink>,
    /// Correlation id -> index of the shard it was bound in. Pluggable
    /// ([`DirectoryMap`]): lock-striped by correlation hash in both
    /// implementations, so binding and resolving rarely contend.
    directory: Box<dyn DirectoryMap>,
    /// The interned `"memcpy"` display name, so memcpy records skip even
    /// the thread-local intern cache on the timeline tap.
    memcpy_sym: Sym,
    /// Self-telemetry instruments (`None` = telemetry off, the default;
    /// every instrumentation site is then a single `Option` branch).
    telemetry: Option<Arc<PipelineTelemetry>>,
    /// Deterministic fault-injection registry (directory-bind and
    /// snapshot-fold stall sites live in this sink). Disabled unless the
    /// `DEEPCONTEXT_FAILPOINTS` spec names one of them; every check is
    /// then one branch on an empty list.
    failpoints: Failpoints,
    /// The incident journal (`None` = journaling off, the default). The
    /// sync sink records only the barrier-anchored flush-boundary event;
    /// the async pipeline and supervisor share this handle for theirs.
    journal: Option<Arc<Journal>>,
    /// Last-known `CctShard::approx_bytes` per shard, refreshed while the
    /// shard lock is already held at batch boundaries, so peak tracking
    /// never sweeps every shard lock.
    shard_bytes: Vec<AtomicUsize>,
    activities: AtomicU64,
    instruction_samples: AtomicU64,
    orphans: AtomicU64,
    peak_bytes: AtomicUsize,
    snapshot_merges: AtomicU64,
    shards_skipped: AtomicU64,
}

impl ShardedSink {
    /// Creates a sink with `shard_count` shards (clamped to at least one)
    /// sharing `interner`, with the incremental snapshot cache enabled.
    pub fn new(interner: Arc<Interner>, shard_count: usize) -> Arc<Self> {
        ShardedSink::with_options(interner, shard_count, true)
    }

    /// Creates a sink with `shard_count` shards and an explicit snapshot
    /// cache setting (`snapshot_cache: false` trades warm-snapshot
    /// latency for not holding a merged second copy of the profile).
    pub fn with_options(
        interner: Arc<Interner>,
        shard_count: usize,
        snapshot_cache: bool,
    ) -> Arc<Self> {
        ShardedSink::with_timeline(
            interner,
            shard_count,
            snapshot_cache,
            &TimelineConfig::default(),
        )
    }

    /// [`with_options`](Self::with_options) plus timeline recording:
    /// when `timeline.enabled`, every kernel/memcpy record attributed by
    /// this sink also appends a context-tagged interval to a bounded
    /// per-shard ring (see [`EventSink::timeline_snapshot`]). The
    /// correlation directory defaults to
    /// [`default_directory_map`](crate::default_directory_map) — use
    /// [`with_directory_map`](Self::with_directory_map) to pin a layout.
    pub fn with_timeline(
        interner: Arc<Interner>,
        shard_count: usize,
        snapshot_cache: bool,
        timeline: &TimelineConfig,
    ) -> Arc<Self> {
        ShardedSink::with_directory_map(
            interner,
            shard_count,
            snapshot_cache,
            timeline,
            crate::default_directory_map(),
        )
    }

    /// [`with_timeline`](Self::with_timeline) plus an explicit
    /// correlation-directory layout
    /// ([`PipelineConfig::directory_map`](crate::PipelineConfig::directory_map)).
    /// Self-telemetry stays off on this path — use
    /// [`with_telemetry`](Self::with_telemetry) to opt in.
    pub fn with_directory_map(
        interner: Arc<Interner>,
        shard_count: usize,
        snapshot_cache: bool,
        timeline: &TimelineConfig,
        directory_map: DirectoryMapKind,
    ) -> Arc<Self> {
        ShardedSink::with_telemetry(
            interner,
            shard_count,
            snapshot_cache,
            timeline,
            directory_map,
            &TelemetryConfig::default(),
        )
    }

    /// The full constructor: [`with_directory_map`](Self::with_directory_map)
    /// plus self-telemetry. When `telemetry.enabled`, the sink registers
    /// its instruments once and records shard-lock hold times, producer
    /// flush sizes/latencies, snapshot fold latencies, and interner/ring
    /// occupancy as it runs; when additionally `telemetry.self_timeline`
    /// and the timeline are on, flushes and folds are recorded as
    /// intervals on the reserved [`TrackKey::SELF_DEVICE`] tracks so the
    /// exported trace shows the profiler's own execution.
    pub fn with_telemetry(
        interner: Arc<Interner>,
        shard_count: usize,
        snapshot_cache: bool,
        timeline: &TimelineConfig,
        directory_map: DirectoryMapKind,
        telemetry: &TelemetryConfig,
    ) -> Arc<Self> {
        ShardedSink::with_failpoints(
            interner,
            shard_count,
            snapshot_cache,
            timeline,
            directory_map,
            telemetry,
            Failpoints::from_env(),
        )
    }

    /// [`with_telemetry`](Self::with_telemetry) with an explicit
    /// fault-injection registry instead of the `DEEPCONTEXT_FAILPOINTS`
    /// environment spec — how tests inject directory-bind / fold stalls
    /// without leaking state across tests through the process
    /// environment. Incident journaling stays off on this path — use
    /// [`with_journal`](Self::with_journal) to opt in.
    #[allow(clippy::too_many_arguments)]
    pub fn with_failpoints(
        interner: Arc<Interner>,
        shard_count: usize,
        snapshot_cache: bool,
        timeline: &TimelineConfig,
        directory_map: DirectoryMapKind,
        telemetry: &TelemetryConfig,
        failpoints: Failpoints,
    ) -> Arc<Self> {
        ShardedSink::with_journal(
            interner,
            shard_count,
            snapshot_cache,
            timeline,
            directory_map,
            telemetry,
            failpoints,
            &JournalConfig::default(),
        )
    }

    /// The full constructor: [`with_failpoints`](Self::with_failpoints)
    /// plus the incident journal. When `journal.enabled`, the sink
    /// builds the ring here — attached to the same telemetry session as
    /// its own instruments, so journal timestamps, self-timeline
    /// intervals and the `deepcontext_journal_*` counters share one
    /// clock/registry — and records the barrier-anchored flush-boundary
    /// event at every [`EventSink::epoch_complete`]. The async pipeline
    /// / supervisor / profiler layers pick the handle up from
    /// [`journal`](Self::journal) for quarantines, drop storms,
    /// transitions and retries — one causally ordered record per run.
    #[allow(clippy::too_many_arguments)]
    pub fn with_journal(
        interner: Arc<Interner>,
        shard_count: usize,
        snapshot_cache: bool,
        timeline: &TimelineConfig,
        directory_map: DirectoryMapKind,
        telemetry: &TelemetryConfig,
        failpoints: Failpoints,
        journal: &JournalConfig,
    ) -> Arc<Self> {
        let n = shard_count.max(1);
        let telemetry = PipelineTelemetry::from_config(telemetry, &interner);
        let journal =
            Journal::from_config(journal, &interner, telemetry.as_deref().map(|t| t.handle()));
        Arc::new(ShardedSink {
            telemetry,
            failpoints,
            journal,
            timeline: timeline.enabled.then(|| TimelineSink::new(n, timeline)),
            shards: (0..n)
                .map(|_| Mutex::new(CctShard::new(Arc::clone(&interner))))
                .collect(),
            directory: directory_map.build(n),
            shard_bytes: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            cache_enabled: snapshot_cache,
            cache: Mutex::new(None),
            memcpy_sym: interner.intern("memcpy"),
            interner,
            activities: AtomicU64::new(0),
            instruction_samples: AtomicU64::new(0),
            orphans: AtomicU64::new(0),
            peak_bytes: AtomicUsize::new(0),
            snapshot_merges: AtomicU64::new(0),
            shards_skipped: AtomicU64::new(0),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The interner shared by every shard.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Whether the incremental snapshot cache is enabled.
    pub fn snapshot_cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Whether kernel/memcpy intervals are being recorded into timeline
    /// rings.
    pub fn timeline_enabled(&self) -> bool {
        self.timeline.is_some()
    }

    /// The self-telemetry instruments, when telemetry is enabled. The
    /// profiler snapshots [`PipelineTelemetry::handle`] for health
    /// reports and exports.
    pub fn telemetry(&self) -> Option<&Arc<PipelineTelemetry>> {
        self.telemetry.as_ref()
    }

    /// The incident journal, when journaling is enabled. The async
    /// pipeline and the profiler pick the handle up from here so every
    /// layer appends to one causally ordered record.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// The fault-injection registry this sink consults. The profiler
    /// installs its fire observer here so injected faults land in the
    /// incident journal.
    pub fn failpoints(&self) -> &Failpoints {
        &self.failpoints
    }

    /// Records one self-timeline interval (`[start_ns, end_ns)` in the
    /// telemetry clock domain) onto the reserved self track `stream`.
    /// A no-op unless telemetry, its self-timeline switch, *and* the
    /// timeline rings are all on.
    pub(crate) fn record_self_interval(&self, stream: u32, start_ns: u64, end_ns: u64, name: Sym) {
        let (Some(telemetry), Some(timeline)) = (&self.telemetry, &self.timeline) else {
            return;
        };
        if !telemetry.self_timeline_enabled() {
            return;
        }
        // Self intervals ride the ring of the shard the stream hashes
        // to, spreading the (tiny) self-traffic across rings instead of
        // hot-spotting shard 0.
        let idx = stream as usize % self.shards.len();
        timeline.record(
            idx,
            Interval {
                track: TrackKey::self_track(stream),
                start: TimeNs(start_ns),
                end: TimeNs(end_ns),
                kind: IntervalKind::Kernel,
                name,
                correlation: 0,
                context: None,
            },
        );
    }

    /// Starts a shard-lock hold-time measurement (`None` when telemetry
    /// is off). Pair with [`note_lock_hold`](Self::note_lock_hold)
    /// before the guard drops.
    fn lock_hold_start(&self) -> Option<u64> {
        self.telemetry.as_ref().map(|t| t.now_ns())
    }

    /// Completes a shard-lock hold-time measurement.
    fn note_lock_hold(&self, start: Option<u64>) {
        if let (Some(t), Some(start)) = (&self.telemetry, start) {
            t.shard_lock_hold.record(t.now_ns().saturating_sub(start));
        }
    }

    /// Refreshes the interner / timeline-ring occupancy gauges. Called
    /// from epoch boundaries (cold path — sizing the rings takes their
    /// locks).
    fn note_occupancy(&self) {
        if let Some(t) = &self.telemetry {
            t.interner_bytes.set(self.interner.approx_bytes() as u64);
            t.ring_bytes.set(
                self.timeline
                    .as_ref()
                    .map(TimelineSink::approx_bytes)
                    .unwrap_or(0) as u64,
            );
        }
    }

    /// Number of shards that have recorded anything — used by routing
    /// tests to assert that multi-stream workloads actually spread.
    pub fn shards_occupied(&self) -> usize {
        self.shards.iter().filter(|s| !s.lock().is_empty()).count()
    }

    /// Live correlation bindings across all shards — introspection for
    /// retirement tests and leak diagnostics.
    pub fn correlation_entries(&self) -> usize {
        self.shards.iter().map(|s| s.lock().correlation_len()).sum()
    }

    /// Live correlation-directory entries — introspection for routing
    /// and leak diagnostics.
    pub fn directory_entries(&self) -> usize {
        self.directory.len()
    }

    fn index_for(&self, key: u64) -> usize {
        (mix(key) % self.shards.len() as u64) as usize
    }

    /// The shard an event from `origin` routes to, keyed by
    /// [`EventOrigin::route_key`]: thread **and** stream for launches (a
    /// single thread fanning work over many streams spreads across
    /// shards), thread alone for CPU samples, correlation id for
    /// identity-less events, shard 0 as the last resort.
    pub fn route(&self, origin: &EventOrigin) -> usize {
        match origin.route_key() {
            Some(key) => self.index_for(key),
            None => 0,
        }
    }

    /// The shard an activity record for `correlation` should be applied
    /// at: the directory's registered home shard when the launch has been
    /// routed already, the correlation-hash shard otherwise.
    pub fn route_activity(&self, correlation: u64) -> usize {
        self.directory_lookup(correlation)
            .unwrap_or_else(|| self.index_for(correlation))
    }

    /// Registers `correlation`'s home shard in the directory without
    /// touching the shard itself. The asynchronous pipeline calls this at
    /// *enqueue* time so activity records that arrive while the launch is
    /// still queued route to the same shard and resolve once the worker
    /// applies the launch ahead of them in FIFO order.
    pub fn bind_route(&self, correlation: u64, shard: usize) {
        self.directory_bind(correlation, shard);
    }

    /// [`bind_route`](Self::bind_route) for a whole launch batch in one
    /// striped pass: each directory stripe holding any of `corrs` is
    /// locked exactly once, so a flushed thread-local batch pays one lock
    /// round-trip per *stripe touched* instead of one per launch.
    pub fn bind_batch(&self, corrs: &[u64], shard: usize) {
        self.directory.bind_batch(corrs, shard as u32);
    }

    /// Forgets every trace of `correlation`: its directory entry and, if
    /// the launch was already applied, the shard's binding — bypassing
    /// the two-phase prune. For drop policies discarding a correlation
    /// whose remaining records will never arrive; without this, evicted
    /// launches/terminal records would leak their entries forever (the
    /// prune only retires correlations whose terminal record was
    /// actually attributed).
    pub fn discard_correlation(&self, correlation: u64) {
        if let Some(idx) = self.directory_lookup(correlation) {
            // Shard before directory stripe (the crate's lock order);
            // the stripe lock from `directory_lookup` is already
            // released here.
            self.shards[idx].lock().unbind(correlation);
        }
        self.directory_remove(correlation);
    }

    fn directory_bind(&self, corr: u64, shard: usize) {
        self.failpoints
            .stall_at(fp_sites::DIR_BIND_STALL, shard as u64);
        self.directory.bind(corr, shard as u32);
    }

    fn directory_lookup(&self, corr: u64) -> Option<usize> {
        self.directory.lookup(corr).map(|s| s as usize)
    }

    fn directory_remove(&self, corr: u64) {
        self.directory.remove(corr);
    }

    /// The interval a kernel/memcpy activity record contributes to the
    /// timeline, tagged with the context `node` it was attributed to
    /// (shard-local; snapshots remap it into the master tree). Other
    /// record kinds carry no device-time window and record nothing.
    ///
    /// This is the recording tap's only contact with the kernel name,
    /// and it avoids even a hash of it on the hot path: a resolved
    /// launch's leaf frame is the `GpuKernel` frame whose name `Sym`
    /// the launch path already interned, so the tap reuses that handle
    /// — one node read, no lock, no clone, no allocation. (Kernel
    /// frames collapse by `(module, pc)`, so the symbol is the code
    /// location's first-seen name — the same convention every CCT view
    /// renders.) Orphaned records, whose node is not a kernel frame,
    /// fall back to interning the record's own name through the worker
    /// thread's local cache ([`Interner::intern_cached`]); memcpys
    /// reuse the pre-interned symbol outright.
    fn interval_of(&self, shard: &CctShard, activity: &Activity, node: NodeId) -> Option<Interval> {
        match &activity.kind {
            ActivityKind::Kernel {
                name,
                stream,
                start,
                end,
                ..
            } => Some(Interval {
                track: TrackKey {
                    device: activity.device.0,
                    stream: stream.0,
                },
                start: *start,
                end: *end,
                kind: IntervalKind::Kernel,
                name: shard
                    .tree()
                    .node(node)
                    .frame()
                    .gpu_kernel_name()
                    .unwrap_or_else(|| self.interner.intern_cached(name)),
                correlation: activity.correlation_id.0,
                context: Some(node),
            }),
            ActivityKind::Memcpy {
                stream, start, end, ..
            } => Some(Interval {
                track: TrackKey {
                    device: activity.device.0,
                    stream: stream.0,
                },
                start: *start,
                end: *end,
                kind: IntervalKind::Memcpy,
                name: self.memcpy_sym,
                correlation: activity.correlation_id.0,
                context: Some(node),
            }),
            ActivityKind::Malloc { .. }
            | ActivityKind::Free { .. }
            | ActivityKind::PcSampling { .. } => None,
        }
    }

    /// Attributes one activity record inside its home shard (`idx`),
    /// recording the record's device interval into the shard's timeline
    /// ring when recording is on — the single tap both ingestion modes
    /// flow through, since the asynchronous workers and the batching
    /// wrapper all drive this same entry point.
    fn attribute_activity(&self, idx: usize, shard: &mut CctShard, activity: &Activity) {
        let corr = activity.correlation_id.0;
        self.activities.fetch_add(1, Ordering::Relaxed);
        let (node, orphaned) = shard.resolve_or_orphan(corr);
        if orphaned {
            self.orphans.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(timeline) = &self.timeline {
            if let Some(interval) = self.interval_of(shard, activity, node) {
                timeline.record(idx, interval);
            }
        }
        let samples = attribute_activity_metrics(shard.tree_mut(), node, activity);
        if matches!(activity.kind, ActivityKind::PcSampling { .. }) {
            // Sampling records keep their correlation live for the kernel
            // record that follows them.
            self.instruction_samples
                .fetch_add(samples, Ordering::Relaxed);
        } else {
            // Terminal record kinds retire their correlation.
            shard.defer_prune(corr);
        }
    }

    /// Applies one launch event at shard `idx`: inserts the call path,
    /// counts kernel launches, and binds the correlation in both the
    /// shard and the directory. `idx` is normally [`route`](Self::route)
    /// of the origin; workers pass the shard their queue is bound to.
    pub fn apply_launch(&self, idx: usize, origin: &EventOrigin, path: &CallPath, api: ApiKind) {
        let mut shard = self.shards[idx].lock();
        let node = shard.insert_call_path(path);
        if api == ApiKind::LaunchKernel {
            shard
                .tree_mut()
                .attribute(node, MetricKind::KernelLaunches, 1.0);
        }
        if let Some(corr) = origin.correlation {
            shard.bind(corr.0, node);
            // Directory stripes are leaf locks: binding here (while the
            // shard is held) guarantees the activity path — which never
            // holds a stripe and a shard at once — sees the binding as
            // soon as it can see the shard's node.
            self.directory_bind(corr.0, idx);
        }
    }

    /// Applies a pre-routed bucket of activity records at shard `idx`,
    /// ending one two-phase-prune batch afterwards. Callers route records
    /// via [`route_activity`](Self::route_activity) first; records whose
    /// correlation lives in another shard fall to the catch-all context.
    pub fn apply_activities(&self, idx: usize, bucket: &[Activity]) {
        self.apply_activity_refs(idx, bucket.iter());
    }

    /// Applies several pre-routed buckets at shard `idx` under **one**
    /// shard-lock acquisition — how pipeline workers batch folds across
    /// flush boundaries — while still ending one two-phase-prune batch
    /// per bucket, so correlation retirement keeps exactly the cadence
    /// of applying each bucket synchronously (resident correlation state
    /// stays proportional to the in-flight window, not to the worker's
    /// backlog).
    pub fn apply_activity_buckets(&self, idx: usize, buckets: &[Vec<Activity>]) {
        if buckets.iter().all(|bucket| bucket.is_empty()) {
            return;
        }
        let pruned = {
            let mut shard = self.shards[idx].lock();
            let hold = self.lock_hold_start();
            let mut pruned = Vec::new();
            for bucket in buckets {
                if bucket.is_empty() {
                    continue;
                }
                for activity in bucket {
                    self.attribute_activity(idx, &mut shard, activity);
                }
                pruned.extend(shard.end_batch());
            }
            self.shard_bytes[idx].store(shard.approx_bytes(), Ordering::Relaxed);
            self.note_lock_hold(hold);
            pruned
        };
        for corr in pruned {
            self.directory_remove(corr);
        }
    }

    /// Applies one flushed thread-local batch at shard `idx` under **one**
    /// shard-lock acquisition, preserving buffer order: launches insert
    /// and bind (their directory entries were published by the flush's
    /// [`bind_batch`](Self::bind_batch) pass), samples attribute — so a
    /// batched producer folds exactly the state an unbatched one would,
    /// at a fraction of the locking cost.
    pub(crate) fn apply_producer_batch(&self, idx: usize, events: &[ProducerEvent]) {
        if events.is_empty() {
            return;
        }
        let mut shard = self.shards[idx].lock();
        let hold = self.lock_hold_start();
        for event in events {
            match event {
                ProducerEvent::Launch { origin, path, api } => {
                    let node = shard.insert_call_path(path);
                    if *api == ApiKind::LaunchKernel {
                        shard
                            .tree_mut()
                            .attribute(node, MetricKind::KernelLaunches, 1.0);
                    }
                    if let Some(corr) = origin.correlation {
                        shard.bind(corr.0, node);
                    }
                }
                ProducerEvent::Sample {
                    path,
                    metric,
                    value,
                } => {
                    let node = shard.insert_call_path(path);
                    shard.tree_mut().attribute(node, *metric, *value);
                }
            }
        }
        // Deliberately no `shard_bytes` refresh: like `apply_launch` and
        // `apply_cpu_sample`, launch/sample shards enter peak accounting
        // at flush boundaries only, so the set of states a peak sample
        // can observe is identical with and without producer batching.
        self.note_lock_hold(hold);
    }

    /// Routes an owned activity buffer into per-shard buckets without
    /// cloning a record (or PC-sampling payload): the whole buffer is
    /// returned as-is when every record shares one home shard — the
    /// common case for single-stream producers.
    pub(crate) fn partition_activities(&self, batch: Vec<Activity>) -> Vec<(usize, Vec<Activity>)> {
        let routes: Vec<u32> = batch
            .iter()
            .map(|a| self.route_activity(a.correlation_id.0) as u32)
            .collect();
        let first = routes[0];
        if routes.iter().all(|&r| r == first) {
            return vec![(first as usize, batch)];
        }
        let mut buckets: Vec<Vec<Activity>> = vec![Vec::new(); self.shards.len()];
        for (activity, idx) in batch.into_iter().zip(&routes) {
            buckets[*idx as usize].push(activity);
        }
        buckets
            .into_iter()
            .enumerate()
            .filter(|(_, bucket)| !bucket.is_empty())
            .collect()
    }

    /// Attributes `count` pipeline-dropped events to shard `idx`'s
    /// synthetic `<dropped>` context, so `DropOldest` overload shows up
    /// inside the profile (not just in side counters).
    pub fn apply_dropped(&self, idx: usize, count: u64) {
        if count == 0 {
            return;
        }
        let mut shard = self.shards[idx].lock();
        shard.attribute_dropped(count);
        self.shard_bytes[idx].store(shard.approx_bytes(), Ordering::Relaxed);
    }

    /// Attributes sampled eviction-victim contexts as children of shard
    /// `idx`'s `<dropped>` node, `stride` events each (the sampler keeps
    /// one victim per `stride` evicted events, so the per-context counts
    /// are unbiased estimates). Victims attribute *exclusively*: the
    /// exact root-ward total [`apply_dropped`](Self::apply_dropped) puts
    /// at `<dropped>` is never double-counted.
    pub fn apply_dropped_samples(&self, idx: usize, paths: &[CallPath], stride: u64) {
        if paths.is_empty() {
            return;
        }
        let mut shard = self.shards[idx].lock();
        for path in paths {
            shard.attribute_dropped_sample(path, stride as f64);
        }
        self.shard_bytes[idx].store(shard.approx_bytes(), Ordering::Relaxed);
    }

    /// Attributes `count` events lost to a quarantined worker to shard
    /// `idx`'s synthetic `<poisoned>` context, so fault isolation shows
    /// up inside the profile (not just in side counters) — the
    /// `<dropped>` convention, applied to panics.
    pub fn apply_poisoned(&self, idx: usize, count: u64) {
        if count == 0 {
            return;
        }
        let mut shard = self.shards[idx].lock();
        shard.attribute_poisoned(count);
        self.shard_bytes[idx].store(shard.approx_bytes(), Ordering::Relaxed);
    }

    fn apply_activity_refs<'a>(&self, idx: usize, bucket: impl Iterator<Item = &'a Activity>) {
        let mut bucket = bucket.peekable();
        if bucket.peek().is_none() {
            return;
        }
        let pruned = {
            let mut shard = self.shards[idx].lock();
            let hold = self.lock_hold_start();
            for activity in bucket {
                self.attribute_activity(idx, &mut shard, activity);
            }
            // Two-phase pruning per shard: correlations attributed in
            // the shard's *previous* batch are dropped now, so
            // sampling records straddling a buffer boundary resolve.
            let pruned = shard.end_batch();
            self.shard_bytes[idx].store(shard.approx_bytes(), Ordering::Relaxed);
            self.note_lock_hold(hold);
            pruned
        };
        for corr in pruned {
            self.directory_remove(corr);
        }
    }

    /// Applies one CPU sample at shard `idx` (normally
    /// [`route`](Self::route) of the sampled thread's origin). The
    /// shard's byte estimate is deliberately *not* refreshed here — like
    /// every pipeline before this one, sample-only shards enter peak
    /// accounting at flush boundaries (their `epoch_complete_shard`),
    /// keeping the per-sample hot path O(path) and the set of states a
    /// peak sample can observe identical across ingestion modes.
    pub fn apply_cpu_sample(&self, idx: usize, path: &CallPath, metric: MetricKind, value: f64) {
        let mut shard = self.shards[idx].lock();
        let node = shard.insert_call_path(path);
        shard.tree_mut().attribute(node, metric, value);
    }

    /// The per-shard portion of [`EventSink::epoch_complete`]: retires the
    /// shard's deferred correlations (every straggler has been delivered
    /// by the flush boundary) and releases batch-sized scratch.
    pub fn epoch_complete_shard(&self, idx: usize) {
        let pruned = {
            let mut shard = self.shards[idx].lock();
            // Every deferred correlation's trailing records have been
            // delivered by now, so one extra epoch retires them all.
            let pruned = shard.end_batch();
            shard.trim();
            self.shard_bytes[idx].store(shard.approx_bytes(), Ordering::Relaxed);
            pruned
        };
        for corr in pruned {
            self.directory_remove(corr);
        }
    }

    /// Sheds the directory stripes' high-water capacity — the cross-shard
    /// portion of a flush boundary, run after every shard's
    /// [`epoch_complete_shard`](Self::epoch_complete_shard). Both
    /// ingestion modes pass through here at every epoch, which makes it
    /// the natural cadence for the occupancy gauges too.
    pub fn trim_directory(&self) {
        self.directory.trim();
        self.note_occupancy();
    }

    /// Brings the snapshot cache up to date: folds every shard whose
    /// dirty generation advanced since the last refresh and skips the
    /// rest. Each shard lock is held only while that one shard is
    /// inspected/folded (cache → shard is the only lock order involving
    /// the cache, so ingestion never deadlocks against refreshes).
    fn refresh_cache(&self, cache: &mut Option<SnapshotCache>) {
        self.failpoints.stall_at(fp_sites::FOLD_STALL, 0);
        let cache =
            cache.get_or_insert_with(|| SnapshotCache::empty(&self.interner, self.shards.len()));
        let fold_start = self.telemetry.as_ref().map(|t| t.now_ns());
        let mut folded = 0u32;
        for (idx, slot) in self.shards.iter().enumerate() {
            let shard = slot.lock();
            let generation = shard.generation();
            if cache.generations[idx] == generation {
                self.shards_skipped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Copy-on-write only when a reader still holds the previous
            // snapshot handle; clean refreshes never reach this line, so
            // an idle profile costs nothing.
            Arc::make_mut(&mut cache.master).merge_incremental(shard.tree(), &mut cache.folds[idx]);
            cache.generations[idx] = generation;
            self.snapshot_merges.fetch_add(1, Ordering::Relaxed);
            folded += 1;
        }
        if let (Some(t), Some(start)) = (&self.telemetry, fold_start) {
            // Clean refreshes (every shard skipped) stay out of the fold
            // histogram — they would drown the signal in near-zeros.
            if folded > 0 {
                let end = t.now_ns();
                t.fold_latency.record(end.saturating_sub(start));
                self.record_self_interval(TrackKey::SELF_STREAM_FOLD, start, end, t.fold_sym);
            }
        }
    }

    /// Folds all shards into a fresh master tree, bypassing the snapshot
    /// cache — the historical O(shards × tree) path, kept as the
    /// benchmark baseline, as the oracle the `cached == fresh`
    /// equivalence tests compare against, and as the only snapshot path
    /// when the cache is disabled.
    pub fn snapshot_uncached(&self) -> CallingContextTree {
        let mut master = CallingContextTree::with_interner(Arc::clone(&self.interner));
        for shard in &self.shards {
            master.merge(shard.lock().tree());
        }
        master
    }

    /// Records the current approximate profile size into the peak, using
    /// the per-shard byte estimates refreshed at batch boundaries — no
    /// cross-shard locking on the ingestion hot path.
    pub(crate) fn note_peak(&self) {
        let shard_bytes: usize = self
            .shard_bytes
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        let bytes =
            shard_bytes + self.directory.len() * DIR_ENTRY_BYTES + self.interner.approx_bytes();
        self.peak_bytes.fetch_max(bytes, Ordering::Relaxed);
    }
}

impl EventSink for ShardedSink {
    fn gpu_launch(&self, origin: &EventOrigin, path: &CallPath, api: ApiKind) {
        self.apply_launch(self.route(origin), origin, path, api);
    }

    fn activity_batch(&self, batch: &[Activity]) {
        if batch.is_empty() {
            return;
        }
        // Route every record to its home shard first, then take each
        // shard lock once per batch.
        let mut buckets: Vec<Vec<&Activity>> = vec![Vec::new(); self.shards.len()];
        for activity in batch {
            let idx = self.route_activity(activity.correlation_id.0);
            buckets[idx].push(activity);
        }
        for (idx, bucket) in buckets.iter().enumerate() {
            self.apply_activity_refs(idx, bucket.iter().copied());
        }
        self.note_peak();
    }

    fn cpu_sample(&self, origin: &EventOrigin, path: &CallPath, metric: MetricKind, value: f64) {
        self.apply_cpu_sample(self.route(origin), path, metric, value);
    }

    fn epoch_complete(&self) {
        for idx in 0..self.shards.len() {
            self.epoch_complete_shard(idx);
        }
        // Directory stripes shed their high-water capacity too.
        self.trim_directory();
        // The barrier-anchored journal event: by the time either
        // ingestion mode reaches its flush boundary the same events have
        // been applied, so sync and async runs journal identical epoch
        // sequences (the equivalence suite holds this as an invariant).
        // The async pipeline does not route through this method — it
        // records the same site itself after its drain barrier.
        if let Some(journal) = &self.journal {
            journal.record(JournalSeverity::Info, journal_sites::PIPELINE_EPOCH, &[]);
        }
    }

    fn snapshot(&self) -> CallingContextTree {
        if !self.cache_enabled {
            return self.snapshot_uncached();
        }
        // Trees only: correlation state stays in the shards (it is still
        // needed for records that have not arrived yet), so the fold skips
        // `CctShard::merge_from`'s remapping work. The fold is cached and
        // refreshed incrementally: clean shards are skipped outright.
        let mut cache = self.cache.lock();
        self.refresh_cache(&mut cache);
        CallingContextTree::clone(&cache.as_ref().expect("cache refreshed").master)
    }

    fn with_snapshot(&self, f: &mut dyn FnMut(&CallingContextTree)) {
        if !self.cache_enabled {
            f(&self.snapshot_uncached());
            return;
        }
        // Clone the refreshed master's *handle* under the cache mutex,
        // then run the callback outside it: concurrent readers share one
        // snapshot instead of queueing on the cache lock for the length
        // of every callback, and a callback may safely re-enter this
        // sink's snapshot APIs.
        let master = {
            let mut cache = self.cache.lock();
            self.refresh_cache(&mut cache);
            Arc::clone(&cache.as_ref().expect("cache refreshed").master)
        };
        f(&master);
    }

    fn finish_snapshot(&self) -> CallingContextTree {
        if !self.cache_enabled {
            return self.snapshot_uncached();
        }
        let mut cache = self.cache.lock();
        self.refresh_cache(&mut cache);
        let master = cache.take().expect("cache refreshed").master;
        // Unwrap the handle without copying unless a reader still holds
        // the final snapshot.
        Arc::try_unwrap(master).unwrap_or_else(|shared| CallingContextTree::clone(&shared))
    }

    fn timeline_snapshot(&self) -> Option<TimelineSnapshot> {
        let timeline = self.timeline.as_ref()?;
        if self.cache_enabled {
            // Refresh the cached master first: the fold is append-only,
            // so every interval context recorded so far has a slot in
            // the per-shard fold mappings, and the remapped ids index
            // into exactly the tree `snapshot`/`with_snapshot` serve.
            // The mappings are copied out so the cache mutex is released
            // before the rings are cloned and remapped — assembling a
            // full timeline must not stall concurrent `with_snapshot`
            // readers (mappings are 4 bytes per folded node; the rings
            // dominate).
            let mappings: Vec<Vec<NodeId>> = {
                let mut cache = self.cache.lock();
                self.refresh_cache(&mut cache);
                let cache = cache.as_ref().expect("cache refreshed");
                cache.folds.iter().map(|f| f.mapping().to_vec()).collect()
            };
            Some(
                timeline
                    .snapshot_with(|shard, node| mappings[shard].get(node.index()).copied())
                    // One symbol-table capture per snapshot (not per
                    // interval): exporters resolve `Sym` names by index.
                    .with_names(self.interner.snapshot()),
            )
        } else {
            // No cache to borrow mappings from: run one deterministic
            // fold (same shard order as `snapshot_uncached`, so the ids
            // match an uncached snapshot taken at the same quiesce
            // point) purely to learn the shard → master node mappings.
            let mut master = CallingContextTree::with_interner(Arc::clone(&self.interner));
            let mappings: Vec<Vec<NodeId>> = self
                .shards
                .iter()
                .map(|shard| master.merge(shard.lock().tree()))
                .collect();
            Some(
                timeline
                    .snapshot_with(|shard, node| mappings[shard].get(node.index()).copied())
                    .with_names(self.interner.snapshot()),
            )
        }
    }

    fn counters(&self) -> SinkCounters {
        let timeline = self
            .timeline
            .as_ref()
            .map(|t| t.counters())
            .unwrap_or_default();
        SinkCounters {
            activities: self.activities.load(Ordering::Relaxed),
            instruction_samples: self.instruction_samples.load(Ordering::Relaxed),
            orphans: self.orphans.load(Ordering::Relaxed),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
            snapshot_merges: self.snapshot_merges.load(Ordering::Relaxed),
            shards_skipped: self.shards_skipped.load(Ordering::Relaxed),
            timeline_intervals: timeline.recorded,
            timeline_dropped: timeline.dropped,
            ..SinkCounters::default()
        }
    }

    fn approx_bytes(&self) -> usize {
        // The snapshot cache (cached master tree + per-shard fold state)
        // is tool memory too — once an analysis session opens, it holds
        // roughly another copy of the profile.
        let cache_bytes: usize = self
            .cache
            .lock()
            .as_ref()
            .map(|c| {
                c.master.approx_tree_bytes()
                    + c.folds.iter().map(FoldState::approx_bytes).sum::<usize>()
            })
            .unwrap_or(0);
        let shard_bytes: usize = self.shards.iter().map(|s| s.lock().approx_bytes()).sum();
        let dir_bytes = self.directory.approx_bytes();
        // Timeline rings are ingestion state too (bounded by
        // ring_capacity × shards, allocated lazily).
        let timeline_bytes = self
            .timeline
            .as_ref()
            .map(TimelineSink::approx_bytes)
            .unwrap_or(0);
        shard_bytes + dir_bytes + cache_bytes + timeline_bytes + self.interner.approx_bytes()
    }
}

impl std::fmt::Debug for ShardedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSink")
            .field("shards", &self.shards.len())
            .field("counters", &self.counters())
            .finish()
    }
}
