//! Table 3 case studies: every optimization the paper derives from
//! DeepContext's analyses must reproduce in direction (and roughly in
//! magnitude) on the simulated platforms.

use deepcontext::prelude::*;

fn gpu_time(workload: &dyn Workload, opts: &WorkloadOptions, spec: DeviceSpec) -> f64 {
    let bed = TestBed::new(spec);
    let stats = bed.run_eager(workload, opts, 2).expect("run");
    stats.gpu_busy.as_secs_f64()
}

#[test]
fn case1_dlrm_index_select_speedup() {
    // Paper: 73.2s -> 44.0s GPU time (1.66x).
    let base = gpu_time(
        &DlrmSmall,
        &WorkloadOptions::default(),
        DeviceSpec::a100_sxm(),
    );
    let fixed = gpu_time(
        &DlrmSmall,
        &WorkloadOptions {
            use_index_select: true,
            ..Default::default()
        },
        DeviceSpec::a100_sxm(),
    );
    let speedup = base / fixed;
    assert!(
        (1.2..3.0).contains(&speedup),
        "DLRM index fix speedup {speedup:.2}x out of expected band"
    );
}

#[test]
fn case2_gnn_index_select_modest_speedup() {
    // Paper: 3.97s -> 3.71s (1.07x).
    let base = gpu_time(&Gnn, &WorkloadOptions::default(), DeviceSpec::a100_sxm());
    let fixed = gpu_time(
        &Gnn,
        &WorkloadOptions {
            use_index_select: true,
            ..Default::default()
        },
        DeviceSpec::a100_sxm(),
    );
    let speedup = base / fixed;
    assert!(
        (1.0..1.5).contains(&speedup),
        "GNN index fix speedup {speedup:.2}x out of expected band"
    );
}

#[test]
fn case3_unet_channels_last_speedup() {
    // Paper: 54s -> 42s end-to-end (1.28x) by removing layout conversions.
    let base = gpu_time(&UNet, &WorkloadOptions::default(), DeviceSpec::a100_sxm());
    let fixed = gpu_time(
        &UNet,
        &WorkloadOptions {
            channels_last: true,
            ..Default::default()
        },
        DeviceSpec::a100_sxm(),
    );
    let speedup = base / fixed;
    assert!(
        (1.05..2.0).contains(&speedup),
        "UNet layout fix speedup {speedup:.2}x out of expected band"
    );
}

#[test]
fn case4_unet_worker_count_speedup() {
    // Paper: 54s -> 47s end-to-end (1.15x) matching workers to cores.
    let wall = |workers: usize| {
        let bed = TestBed::new(DeviceSpec::a100_sxm());
        bed.run_eager(
            &UNet,
            &WorkloadOptions {
                dataloader_workers: workers,
                ..Default::default()
            },
            3,
        )
        .expect("run")
        .wall
        .as_secs_f64()
    };
    let oversubscribed = wall(16);
    let matched = wall(8);
    let speedup = oversubscribed / matched;
    assert!(
        (1.02..1.6).contains(&speedup),
        "worker fix speedup {speedup:.2}x out of expected band"
    );
}

#[test]
fn case5_transformer_fused_loss_speedup() {
    // Paper: 30.5s -> 23.9s GPU time after fusing the loss kernels.
    let bed = TestBed::new(DeviceSpec::a100_sxm());
    let base = bed
        .run_eager(&TransformerBig, &WorkloadOptions::default(), 2)
        .unwrap();
    let bed2 = TestBed::new(DeviceSpec::a100_sxm());
    let fused = bed2
        .run_eager(
            &TransformerBig,
            &WorkloadOptions {
                fused_loss: true,
                ..Default::default()
            },
            2,
        )
        .unwrap();
    assert!(fused.kernels < base.kernels, "fusion must reduce launches");
    assert!(
        fused.gpu_busy <= base.gpu_busy,
        "fusion must not slow the GPU"
    );
}

#[test]
fn case6_llama_stall_analysis_finds_cast_stalls() {
    // Paper §6.7: constant-memory misses + math-dependency stalls in the
    // torch.to conversions inside LlamaRMSNorm. N/A speedup — the
    // deliverable is the finding.
    let bed = TestBed::new(DeviceSpec::a100_sxm());
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());
    let config = ProfilerConfig {
        instruction_sampling: Some(SamplingConfig {
            period: TimeNs(500),
            max_samples_per_kernel: 1024,
        }),
        ..ProfilerConfig::deepcontext_native()
    };
    let profiler = Profiler::attach(config, bed.env(), &monitor, bed.gpu());
    bed.run_eager(&Llama3, &WorkloadOptions::default(), 2)
        .unwrap();
    let db = profiler.finish(ProfileMeta::default());

    assert!(
        db.cct()
            .total(MetricKind::Stall(StallReason::ConstantMemory))
            > 0.0
    );
    assert!(
        db.cct()
            .total(MetricKind::Stall(StallReason::MathDependency))
            > 0.0
    );

    let report = Analyzer::with_default_rules().analyze(&db);
    let stalls = report.by_rule("fine-grained-stall");
    assert!(!stalls.is_empty(), "stall analysis found nothing");
}

#[test]
fn case7_amd_norm_share_exceeds_nvidia_norm_share() {
    // Paper §6.5 / Figure 10: on MI250 the instance_norm template becomes
    // the hotspot; on A100 conv2d stays on top.
    fn operator_share(spec: DeviceSpec, op_label: &str) -> f64 {
        let platform = spec.platform_tag();
        let bed = TestBed::new(spec);
        let monitor = DlMonitor::init(bed.env(), Interner::new());
        monitor.attach_framework(bed.eager().core().callbacks());
        monitor.attach_gpu(bed.gpu());
        let profiler = Profiler::attach(
            ProfilerConfig::deepcontext_native(),
            bed.env(),
            &monitor,
            bed.gpu(),
        );
        bed.run_eager(&UNet, &WorkloadOptions::default(), 1)
            .unwrap();
        let db = profiler.finish(ProfileMeta {
            platform,
            ..Default::default()
        });
        let cct = db.cct();
        let interner = cct.interner();
        let total = cct.total(MetricKind::GpuTime);
        cct.nodes_of_kind(FrameKind::Operator)
            .into_iter()
            .filter(|n| {
                matches!(
                    cct.node(*n).frame(),
                    deepcontext::core::Frame::Operator {
                        phase: OpPhase::Forward,
                        ..
                    }
                ) && cct.node(*n).frame().short_label(&interner) == op_label
            })
            .map(|n| cct.node(n).metrics().sum(MetricKind::GpuTime))
            .sum::<f64>()
            / total
    }

    let nv_norm = operator_share(DeviceSpec::a100_sxm(), "aten::instance_norm");
    let nv_conv = operator_share(DeviceSpec::a100_sxm(), "aten::conv2d");
    let amd_norm = operator_share(DeviceSpec::mi250(), "aten::instance_norm");
    let amd_conv = operator_share(DeviceSpec::mi250(), "aten::conv2d");
    assert!(
        nv_conv > nv_norm,
        "A100 hotspot should be conv2d ({nv_conv:.2} vs {nv_norm:.2})"
    );
    assert!(
        amd_norm > amd_conv,
        "MI250 hotspot should be instance_norm ({amd_norm:.2} vs {amd_conv:.2})"
    );
}

#[test]
fn case8_jit_needs_fewer_kernels_than_eager() {
    // Paper §6.6: the JAX version consistently requires fewer kernel
    // operations than its PyTorch counterpart.
    for name in ["dlrm-small", "unet", "gnn", "resnet"] {
        let workload = workload_by_name(name).unwrap();
        let bed = TestBed::new(DeviceSpec::a100_sxm());
        let eager = bed
            .run_eager(workload.as_ref(), &WorkloadOptions::default(), 1)
            .unwrap();
        let bed2 = TestBed::new(DeviceSpec::a100_sxm());
        let jit = bed2
            .run_jit(workload.as_ref(), &WorkloadOptions::default(), 1)
            .unwrap();
        assert!(
            jit.kernels < eager.kernels,
            "{name}: jit {} !< eager {}",
            jit.kernels,
            eager.kernels
        );
    }
}
