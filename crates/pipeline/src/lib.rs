//! The DeepContext event-ingestion pipeline.
//!
//! Every collection path of the profiler terminates in an [`EventSink`].
//! This crate owns that contract and both sinks that implement it:
//!
//! * [`ShardedSink`] — the synchronous pipeline: producers route each
//!   event to one of N [`CctShard`]s and attribute it inline under that
//!   shard's lock (see [`sharded`]);
//! * [`AsyncSink`] — the asynchronous pipeline: producers enqueue owned
//!   events into per-shard **bounded channels** and a worker pool
//!   performs correlation resolution, CCT mutation and metric folds off
//!   the producer's critical path, with explicit
//!   [backpressure](BackpressurePolicy) and deterministic drain barriers
//!   (see [`async_sink`]).
//!
//! Both modes share **thread-local producer batching** ([`batch`]):
//! producers append launches and CPU samples to a per-thread, per-shard
//! `LaunchBatch` buffer; a flush — every
//! [`PipelineConfig::launch_batch`] events, at every barrier, before any
//! activity delivery, and on thread exit — binds the whole batch's
//! correlations in one striped-directory pass and hands each shard's run
//! over in one delivery, amortizing the per-launch fixed costs that
//! dominate coarse kernel-only streams. The asynchronous mode drives the
//! *same* per-shard entry points as the synchronous mode
//! ([`ShardedSink::apply_launch`] et al.), so the modes produce
//! semantically identical profiles — an equivalence this crate's
//! proptests assert tree-by-tree via
//! `CallingContextTree::semantic_diff` at `launch_batch` 1, 7 and 64.
//!
//! ```text
//!  producers (launch cb / activity flush / CPU sampler)
//!      │  route → per-thread LaunchBatch        (no locks shared)
//!      ▼  flush: batch ≥ launch_batch │ barrier │ activity │ thread exit
//!  bind_batch corr→shard (one striped directory pass)
//!      │
//!      ├── sync: apply batch under one shard-lock acquisition
//!      ▼
//!  per-shard bounded channels  ──ᴮˡᵒᶜᵏ/ᴰʳᵒᵖᴼˡᵈᵉˢᵗ──  backpressure
//!      │  FIFO per shard, send_batch single-notify push
//!      ▼
//!  worker pool (shard i → worker i mod W)
//!      │  apply_producer_batch / apply_activities / epoch
//!      ▼
//!  CctShards ──merge_incremental──▶ cached master CCT (Arc-shared)
//!      ├── kernel/memcpy records ──▶ timeline rings (per-shard, bounded)
//!      └── per-shard DropOldest drops ──▶ synthetic `<dropped>` context
//! ```
//!
//! When `ProfilerConfig::timeline` is on, the per-shard attribution
//! entry points additionally record each kernel/memcpy record's
//! `[start, end)` interval — tagged with its resolved CCT context — into
//! bounded per-shard timeline rings (`deepcontext-timeline`). Both
//! ingestion modes flow through the same tap, and
//! [`EventSink::timeline_snapshot`] runs the same drain barriers as the
//! profile snapshots, so async-mode timelines are deterministic at every
//! flush.
//!
//! [`CctShard`]: deepcontext_core::CctShard

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_sink;
pub mod batch;
pub mod directory;
pub mod failpoint;
pub mod self_telemetry;
pub mod sharded;
pub mod sink;
pub mod supervisor;

pub use async_sink::{AsyncSink, BackpressurePolicy, PipelineConfig};
pub use batch::BatchingSink;
pub use directory::{
    default_directory_map, DirectoryMap, DirectoryMapKind, StripedFlatDirectory,
    StripedHashDirectory,
};
pub use failpoint::Failpoints;
pub use self_telemetry::PipelineTelemetry;
pub use sharded::ShardedSink;
pub use sink::{attribute_activity_metrics, EventSink, SinkCounters};
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorSink, SupervisorState};

// The self-telemetry types the profiler speaks (see
// `ShardedSink::with_telemetry`), re-exported for the same reason.
pub use deepcontext_telemetry::{
    default_journal_config, default_journal_enabled, default_telemetry_config,
    default_telemetry_enabled, journal_sites, HealthReport, HealthThresholds, Journal,
    JournalConfig, JournalSeverity, Telemetry, TelemetryConfig, TelemetrySnapshot,
};

// The timeline types every sink speaks (see `EventSink::timeline_snapshot`
// and `ShardedSink::with_timeline`), re-exported so embedders need no
// direct `deepcontext-timeline` dependency.
pub use deepcontext_timeline::{
    default_timeline_config, default_timeline_enabled, TimelineConfig, TimelineSnapshot,
    TimelineStats,
};

/// The built-in producer-batching threshold
/// ([`PipelineConfig::launch_batch`]) when no environment override is
/// set — chosen by `bench_pipeline`'s batch-size sweep (see
/// `BENCH_pipeline.json`): large enough to amortize the directory bind
/// and channel push, small enough that a barrier flushing a partial
/// batch wastes little work.
pub const DEFAULT_LAUNCH_BATCH: usize = 64;

/// The default producer-batching threshold, honouring the
/// `DEEPCONTEXT_LAUNCH_BATCH` environment override CI uses to run the
/// whole suite both unbatched (`=1`) and batched (`=64`). `0` is
/// treated as `1` — both mean "off" — so the natural disable value
/// never silently falls back to full batching; unset or unparsable
/// values fall back to [`DEFAULT_LAUNCH_BATCH`].
pub fn default_launch_batch() -> usize {
    std::env::var("DEEPCONTEXT_LAUNCH_BATCH")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(DEFAULT_LAUNCH_BATCH)
}

/// Whether attribution runs inline on producers or on the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestionMode {
    /// Producers attribute inline under per-shard locks ([`ShardedSink`]).
    #[default]
    Sync,
    /// Producers enqueue into bounded channels; a worker pool attributes
    /// ([`AsyncSink`]).
    Async,
}

/// The default ingestion mode, honouring the
/// `DEEPCONTEXT_INGESTION_MODE` environment override (`sync` / `async`)
/// CI uses to run the whole suite under both pipelines. Falls back to
/// [`IngestionMode::Sync`] when unset or invalid, so the asynchronous
/// path is strictly opt-in.
pub fn default_ingestion_mode() -> IngestionMode {
    match std::env::var("DEEPCONTEXT_INGESTION_MODE") {
        Ok(v) if v.trim().eq_ignore_ascii_case("async") => IngestionMode::Async,
        _ => IngestionMode::Sync,
    }
}
