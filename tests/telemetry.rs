//! End-to-end self-telemetry tests: the profiler watching its own
//! pipeline through the full stack. A multi-stream run with telemetry
//! enabled must produce a populated [`HealthReport`], well-formed
//! Prometheus text exposition, a Chrome trace carrying the reserved
//! self-timeline tracks *alongside* the workload tracks, and
//! `telemetry.*` metadata embeds that trend across a profile store.

use std::collections::BTreeMap;
use std::sync::Arc;

use deepcontext::pipeline::IngestionMode;
use deepcontext::prelude::*;
use deepcontext::profiler::TimelineConfig;
use deepcontext_telemetry::names;

const ITERATIONS: u32 = 3;

struct Rig {
    bed: TestBed,
    monitor: Arc<DlMonitor>,
}

fn rig() -> Rig {
    let bed = TestBed::with_devices(vec![DeviceSpec::a100_sxm(), DeviceSpec::a100_sxm()]);
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());
    Rig { bed, monitor }
}

/// A profiler with self-telemetry *and* the timeline explicitly on —
/// independent of the `DEEPCONTEXT_TELEMETRY` matrix, so these tests
/// exercise the enabled path even in the default CI lanes.
fn telemetry_profiler(rig: &Rig, mode: IngestionMode) -> Profiler {
    Profiler::attach(
        ProfilerConfig {
            timeline: TimelineConfig::enabled(),
            ingestion_mode: mode,
            telemetry: TelemetryConfig::enabled(),
            ..ProfilerConfig::deepcontext()
        },
        rig.bed.env(),
        &rig.monitor,
        rig.bed.gpu(),
    )
}

fn run_multi_stream(rig: &Rig, profiler: &Profiler) {
    rig.bed
        .run_eager(
            &MultiStream::default(),
            &WorkloadOptions::default(),
            ITERATIONS,
        )
        .expect("workload run");
    profiler.flush();
    // Force a cached-snapshot fold so `fold_latency` carries signal.
    profiler.with_cct(|_| ());
}

#[test]
fn async_run_produces_a_populated_health_report() {
    let rig = rig();
    let profiler = telemetry_profiler(&rig, IngestionMode::Async);
    run_multi_stream(&rig, &profiler);

    let report = profiler.health_report().expect("telemetry enabled");
    assert!(!report.is_empty(), "report carries signal: {report:?}");
    assert!(report.window_ns > 0);
    assert!(report.events_enqueued > 0, "events flowed through queues");
    assert_eq!(report.events_dropped, 0, "Block policy loses nothing");
    assert_eq!(report.drop_rate, 0.0);
    assert!(report.enqueue_rate() > 0.0);

    // The acceptance bar: queue-depth and flush-latency histograms are
    // both populated by a MultiStream async run.
    assert!(report.queue_depth.count > 0, "queue depths observed");
    assert!(report.flush_latency.count > 0, "producer flushes timed");
    assert!(report.fold_latency.count > 0, "snapshot folds timed");
    assert!(report.flush_latency.p99 >= report.flush_latency.p50);

    // Queue capacity was registered and the high-water mark stayed
    // within it.
    assert!(report.queue_capacity > 0);
    assert!(report.max_queue_depth >= 1);
    assert!(report.queue_saturation > 0.0 && report.queue_saturation <= 1.0);

    // Workers accounted their time as busy or parked.
    assert!(report.worker_busy_ns > 0, "workers drained batches");
    assert!(report.worker_utilization > 0.0 && report.worker_utilization <= 1.0);
}

#[test]
fn sync_run_reports_flushes_and_folds_without_queue_series() {
    let rig = rig();
    let profiler = telemetry_profiler(&rig, IngestionMode::Sync);
    run_multi_stream(&rig, &profiler);

    let report = profiler.health_report().expect("telemetry enabled");
    assert!(!report.is_empty());
    assert!(report.flush_latency.count > 0);
    assert!(report.fold_latency.count > 0);
    // No queues in sync mode: the queue series are absent, not zeroed.
    assert_eq!(report.queue_capacity, 0);
    assert_eq!(report.queue_depth.count, 0);
    assert_eq!(report.queue_saturation, 0.0);
    let exposition = profiler.telemetry_snapshot().unwrap().to_prometheus();
    assert!(!exposition.contains(names::QUEUE_DEPTH));

    // Lock-hold and occupancy instrumentation fired on the sync path.
    let snapshot = profiler.telemetry_snapshot().unwrap();
    assert!(snapshot.histogram_merged(names::SHARD_LOCK_HOLD_NS).count > 0);
    assert!(snapshot.gauge_max(names::INTERNER_BYTES) > 0);
    assert!(snapshot.gauge_max(names::TIMELINE_RING_BYTES) > 0);
}

#[test]
fn disabled_telemetry_yields_no_handles_and_no_embeds() {
    let rig = rig();
    let profiler = Profiler::attach(
        ProfilerConfig {
            timeline: TimelineConfig::enabled(),
            telemetry: TelemetryConfig::default(),
            ..ProfilerConfig::deepcontext()
        },
        rig.bed.env(),
        &rig.monitor,
        rig.bed.gpu(),
    );
    run_multi_stream(&rig, &profiler);
    assert!(profiler.telemetry().is_none());
    assert!(profiler.telemetry_snapshot().is_none());
    assert!(profiler.health_report().is_none());
    let db = profiler.finish(ProfileMeta::default());
    assert!(db
        .meta()
        .extra
        .iter()
        .all(|(k, _)| !k.starts_with("telemetry.")));
    // And no self tracks leak into the workload timeline.
    let timeline = db.timeline().expect("timeline enabled");
    assert!(timeline.intervals.iter().all(|iv| !iv.track.is_self()));
}

// ---------------------------------------------------------------------
// Prometheus text-exposition checker: a strict structural parse of the
// format — TYPE declarations, family grouping, label ordering, histogram
// bucket discipline — over the exposition a real run produces.
// ---------------------------------------------------------------------

/// One parsed sample: (family, metric name, sorted labels, value).
struct Sample {
    family: String,
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_exposition(text: &str) -> (BTreeMap<String, String>, Vec<Sample>) {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().expect("TYPE family").to_string();
            let kind = parts.next().expect("TYPE kind").to_string();
            assert!(parts.next().is_none(), "trailing TYPE tokens: {line}");
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown type {kind}"
            );
            assert!(
                types.insert(family, kind).is_none(),
                "duplicate TYPE declaration: {line}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value: {line}"));
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').expect("closing brace");
                let mut labels = Vec::new();
                for pair in body.split(',') {
                    let (k, v) = pair.split_once('=').expect("label k=v");
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .expect("quoted label value");
                    assert!(
                        !v.contains('"') && !v.contains('\n'),
                        "unescaped label value: {line}"
                    );
                    assert!(
                        k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                        "bad label name {k}"
                    );
                    labels.push((k.to_string(), v.to_string()));
                }
                (name.to_string(), labels)
            }
        };
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name {name}"
        );
        // Resolve the family: exact for counters/gauges, suffix-stripped
        // for histogram series.
        let family = if types.contains_key(&name) {
            name.clone()
        } else {
            let stripped = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or_else(|| panic!("sample {name} has no TYPE declaration"));
            assert_eq!(
                types.get(stripped).map(String::as_str),
                Some("histogram"),
                "suffix series {name} must belong to a histogram family"
            );
            stripped.to_string()
        };
        samples.push(Sample {
            family,
            name,
            labels,
            value,
        });
    }
    (types, samples)
}

#[test]
fn prometheus_exposition_is_well_formed() {
    let rig = rig();
    let profiler = telemetry_profiler(&rig, IngestionMode::Async);
    run_multi_stream(&rig, &profiler);
    let snapshot = profiler.telemetry_snapshot().expect("telemetry enabled");
    let text = snapshot.to_prometheus();

    let (types, samples) = parse_exposition(&text);
    assert_eq!(
        types.get(names::EVENTS_ENQUEUED).map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        types.get(names::MAX_QUEUE_DEPTH).map(String::as_str),
        Some("gauge")
    );
    assert_eq!(
        types.get(names::QUEUE_DEPTH).map(String::as_str),
        Some("histogram")
    );
    assert_eq!(
        types.get(names::FLUSH_LATENCY_NS).map(String::as_str),
        Some("histogram")
    );

    // Label keys are sorted within every series (deterministic output)
    // with the synthetic `le` appended last per Prometheus convention,
    // and re-exporting the same snapshot is byte-identical.
    for s in &samples {
        let mut keys: Vec<&String> = s.labels.iter().map(|(k, _)| k).collect();
        if keys.last().is_some_and(|k| *k == "le") {
            keys.pop();
        }
        assert!(
            !keys.iter().any(|k| *k == "le"),
            "le must be the last label in {}",
            s.name
        );
        let sorted = {
            let mut c = keys.clone();
            c.sort();
            c
        };
        assert_eq!(keys, sorted, "labels out of order in {}", s.name);
        let mut deduped = keys.clone();
        deduped.dedup();
        assert_eq!(deduped.len(), keys.len(), "duplicate label in {}", s.name);
    }
    assert_eq!(text, snapshot.to_prometheus(), "exporter is deterministic");

    // Histogram discipline per (family, labels-minus-le): cumulative
    // non-decreasing buckets, ascending bounds, +Inf == _count, and the
    // queue-depth family carries per-shard series.
    type SeriesKey = (String, Vec<(String, String)>);
    let mut buckets: BTreeMap<SeriesKey, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey, f64> = BTreeMap::new();
    for s in &samples {
        let base: Vec<(String, String)> = s
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .cloned()
            .collect();
        if s.name.ends_with("_bucket") {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| {
                    if v == "+Inf" {
                        f64::INFINITY
                    } else {
                        v.parse().expect("numeric le")
                    }
                })
                .expect("bucket has le");
            buckets
                .entry((s.family.clone(), base))
                .or_default()
                .push((le, s.value));
        } else if s.name.ends_with("_count")
            && types.get(&s.family).map(String::as_str) == Some("histogram")
        {
            counts.insert((s.family.clone(), base), s.value);
        }
    }
    assert!(!buckets.is_empty(), "run produced histogram series");
    let mut queue_depth_series = 0usize;
    for (key, series) in &buckets {
        let mut last_le = f64::NEG_INFINITY;
        let mut last_cum = 0.0;
        for &(le, cum) in series {
            assert!(le > last_le, "{}: le not ascending", key.0);
            assert!(cum >= last_cum, "{}: bucket counts not cumulative", key.0);
            last_le = le;
            last_cum = cum;
        }
        assert_eq!(last_le, f64::INFINITY, "{}: missing +Inf bucket", key.0);
        assert_eq!(
            Some(&last_cum),
            counts.get(key),
            "{}: +Inf bucket must equal _count",
            key.0
        );
        if key.0 == names::QUEUE_DEPTH {
            queue_depth_series += 1;
            assert!(
                key.1.iter().any(|(k, _)| k == "shard"),
                "queue depth series carries its shard label"
            );
        }
    }
    assert!(queue_depth_series > 0, "per-shard queue depth exposed");
}

#[test]
fn chrome_trace_renders_self_tracks_alongside_workload_tracks() {
    let rig = rig();
    let profiler = telemetry_profiler(&rig, IngestionMode::Async);
    run_multi_stream(&rig, &profiler);

    let timeline = profiler.timeline().expect("timeline enabled");
    let self_tracks: Vec<_> = timeline
        .tracks()
        .iter()
        .filter(|t| t.key().is_self())
        .collect();
    let workload_tracks = timeline.tracks().len() - self_tracks.len();
    assert!(!self_tracks.is_empty(), "reserved self tracks recorded");
    assert!(workload_tracks > 0, "workload tracks still present");
    // Self intervals are well-formed: reserved device, no workload
    // context, non-inverted time.
    for track in &self_tracks {
        for iv in track.intervals() {
            assert!(iv.track.is_self());
            assert!(iv.context.is_none());
            assert!(iv.end >= iv.start);
        }
    }

    // The self device never leaks into the per-device latency stats
    // (its intervals sit on the telemetry clock, not the workload
    // clock), so the analyzer's latency rules cannot flag the
    // profiler's own lanes as an underutilized GPU.
    assert!(timeline
        .stats()
        .devices
        .iter()
        .all(|d| d.device != deepcontext::core::TrackKey::SELF_DEVICE));
    let analyzer = Analyzer::with_default_rules();
    let report = profiler.with_cct(|cct| analyzer.preview_with_timeline(cct, &timeline));
    assert!(report
        .issues()
        .iter()
        .all(|i| !i.message.contains("4294967295")));

    let json = profiler.with_cct(|cct| timeline.to_chrome_trace(Some(cct)));
    // The reserved device renders as the profiler's own process, its
    // lanes named after the pipeline stages, next to the GPU processes.
    assert!(json.contains("\"name\":\"profiler (self)\""));
    assert!(json.contains("\"name\":\"GPU 0\""));
    assert!(json.contains("\"name\":\"snapshot fold\""));
    assert!(json.contains("\"name\":\"producer flush\"") || json.contains("\"name\":\"worker 0\""));
    assert!(json.contains("profiler worker batch") || json.contains("profiler producer flush"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn finish_embeds_telemetry_metadata_that_trends_across_a_store() {
    let run = || {
        let rig = rig();
        let profiler = telemetry_profiler(&rig, IngestionMode::Async);
        run_multi_stream(&rig, &profiler);
        profiler.finish(ProfileMeta {
            workload: "multi-stream".into(),
            framework: "eager".into(),
            platform: "nvidia-a100".into(),
            ..Default::default()
        })
    };
    let db = run();
    let extra: BTreeMap<&str, &str> = db
        .meta()
        .extra
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    for key in [
        "telemetry.window_ns",
        "telemetry.enqueued_events",
        "telemetry.dropped_events",
        "telemetry.drop_rate",
        "telemetry.max_queue_depth",
        "telemetry.queue_saturation",
        "telemetry.worker_utilization",
        "telemetry.flush_p99_ns",
        "telemetry.fold_p99_ns",
    ] {
        let value = extra.get(key).unwrap_or_else(|| panic!("missing {key}"));
        assert!(value.parse::<f64>().is_ok(), "{key}={value} not numeric");
    }
    assert!(extra["telemetry.enqueued_events"].parse::<u64>().unwrap() > 0);

    // The embeds survive the store and feed cross-run overhead trends.
    let dir =
        std::env::temp_dir().join(format!("deepcontext-telemetry-e2e-{}", std::process::id()));
    let store = ProfileStore::open(&dir).unwrap();
    store.save(&db).unwrap();
    store.save(&run()).unwrap();
    let filter = RunFilter::any().workload("multi-stream");
    let trend = store
        .meta_trend(&filter, "telemetry.enqueued_events")
        .unwrap();
    assert_eq!(trend.len(), 2);
    assert!(trend.iter().all(|p| p.total > 0.0));
    // Header-only loads see the embeds too.
    let runs = store.list_filtered(&filter).unwrap();
    assert!(runs.iter().all(|r| r
        .meta
        .extra
        .iter()
        .any(|(k, _)| k == "telemetry.flush_p99_ns")));
    std::fs::remove_dir_all(dir).unwrap();
}
