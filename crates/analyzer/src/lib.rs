//! The automated performance analyzer (paper §4.3).
//!
//! Analyses run postmortem over a [`ProfileDb`]: a **call-path search**
//! phase locates semantic nodes (kernels, operators, losses, data
//! loading) and program-structure patterns, a **metric query** phase
//! filters them by thresholds, and matches are flagged as [`Issue`]s with
//! actionable suggestions (rendered by the GUI crate).
//!
//! The five example analyses of the paper ship as built-in rules:
//!
//! | # | Rule | Paper client |
//! |---|------|--------------|
//! | 1 | [`HotspotRule`] | Hotspot Identification |
//! | 2 | [`KernelFusionRule`] | Kernel Fusion Analysis |
//! | 3 | [`FwdBwdRule`] | Forward/Backward Operator Analysis |
//! | 4 | [`StallRule`] | Fine-grained Stall Analysis |
//! | 5 | [`CpuLatencyRule`] | CPU Latency Analysis |
//!
//! Two timeline-backed latency analyses join them when a recorded
//! timeline is attached to the view
//! ([`ProfileView::with_timeline`] / [`Analyzer::analyze_with_timeline`]):
//!
//! | # | Rule | Question |
//! |---|------|----------|
//! | 6 | [`GpuIdleRule`] | which contexts left the device idle between launches |
//! | 7 | [`StreamSerializationRule`] | do multi-stream devices actually overlap |
//!
//! Cross-run analysis works against a persistent [`ProfileStore`] (a
//! directory of saved runs): filter runs by metadata ([`RunFilter`]),
//! follow a metric across runs ([`ProfileStore::trend`]), diff two
//! stored runs in O(changed subtree)
//! ([`ProfileDiff::compare_mapped`]), and flag a fresh run against the
//! store's baseline with the [`RegressionRule`] rule.
//!
//! Custom rules implement the [`Rule`] trait and register on an
//! [`Analyzer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod issue;
mod latency;
mod query;
mod report;
mod rules;
mod store;
mod view;

pub use diff::{DiffEntry, ProfileDiff};
pub use issue::{Issue, Severity};
pub use latency::{GpuIdleRule, StreamSerializationRule};
pub use query::{CallPathQuery, FrameMatcher, SemanticClass};
pub use report::AnalysisReport;
pub use rules::{CpuLatencyRule, FwdBwdRule, HotspotRule, KernelFusionRule, StallRule};
pub use store::{
    DegradedRunRule, IncidentRule, ProfileStore, RegressionRule, RunFilter, RunRecord, TrendPoint,
};
pub use view::ProfileView;

use deepcontext_core::{CallingContextTree, ProfileDb};
use deepcontext_timeline::TimelineSnapshot;

/// A performance-analysis rule.
pub trait Rule: Send + Sync {
    /// Stable rule name (used in reports).
    fn name(&self) -> &str;
    /// One-line description.
    fn description(&self) -> &str;
    /// Runs the rule, returning flagged issues.
    fn analyze(&self, view: &ProfileView<'_>) -> Vec<Issue>;
}

/// Runs a set of rules over profiles.
///
/// # Examples
///
/// ```
/// use deepcontext_analyzer::Analyzer;
/// use deepcontext_core::{CallingContextTree, Frame, MetricKind, ProfileDb, ProfileMeta};
///
/// let mut cct = CallingContextTree::new();
/// let i = cct.interner();
/// let hot = cct.insert_path(&[
///     Frame::operator("aten::conv2d", &i),
///     Frame::gpu_kernel("implicit_gemm", "libtorch_cuda.so", 0x10, &i),
/// ]);
/// cct.attribute(hot, MetricKind::GpuTime, 1e9);
///
/// let db = ProfileDb::new(ProfileMeta::default(), cct);
/// let report = Analyzer::with_default_rules().analyze(&db);
/// assert!(report.issues().iter().any(|i| i.rule == "hotspot"));
/// ```
#[derive(Default)]
pub struct Analyzer {
    rules: Vec<Box<dyn Rule>>,
}

impl Analyzer {
    /// An analyzer with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// An analyzer preloaded with the paper's five example analyses at
    /// their default thresholds, plus the two timeline-backed latency
    /// rules (which stay silent unless a timeline is attached to the
    /// analyzed view), the [`DegradedRunRule`] guard (silent unless the
    /// profile was collected under supervisor degradation), and the
    /// [`IncidentRule`] correlator (silent unless the profile carries an
    /// incident journal).
    pub fn with_default_rules() -> Self {
        let mut a = Analyzer::new();
        a.add_rule(HotspotRule::default());
        a.add_rule(KernelFusionRule::default());
        a.add_rule(FwdBwdRule::default());
        a.add_rule(StallRule::default());
        a.add_rule(CpuLatencyRule::default());
        a.add_rule(GpuIdleRule::default());
        a.add_rule(StreamSerializationRule::default());
        // Silent unless the profiled run carries supervisor.* metadata
        // (i.e. degraded ingestion actually happened).
        a.add_rule(DegradedRunRule);
        // Silent unless the profiled run carries its incident journal.
        a.add_rule(IncidentRule);
        a
    }

    /// Registers a rule.
    pub fn add_rule(&mut self, rule: impl Rule + 'static) -> &mut Self {
        self.rules.push(Box::new(rule));
        self
    }

    /// Number of registered rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Runs every rule over `db`.
    pub fn analyze(&self, db: &ProfileDb) -> AnalysisReport {
        self.run(&ProfileView::new(db))
    }

    /// Runs every rule over a live (in-progress) calling context tree —
    /// the preview path for interactive analysis against a running
    /// profiler's cached snapshot (`profiler.with_cct(|cct|
    /// analyzer.preview(cct))`), with no database round-trip.
    pub fn preview(&self, cct: &CallingContextTree) -> AnalysisReport {
        self.run(&ProfileView::live(cct))
    }

    /// [`analyze`](Self::analyze) with the profile's recorded timeline
    /// attached, enabling the latency rules. `timeline` must have been
    /// resolved against `db`'s tree (the snapshot `Profiler::finish`
    /// consumed).
    pub fn analyze_with_timeline(
        &self,
        db: &ProfileDb,
        timeline: &TimelineSnapshot,
    ) -> AnalysisReport {
        self.run(&ProfileView::new(db).with_timeline(timeline))
    }

    /// [`preview`](Self::preview) with the running profiler's timeline
    /// attached: `profiler.with_cct(|cct|
    /// analyzer.preview_with_timeline(cct, &timeline))`, where
    /// `timeline` came from the same profiler's `timeline()` at the same
    /// quiesce point.
    pub fn preview_with_timeline(
        &self,
        cct: &CallingContextTree,
        timeline: &TimelineSnapshot,
    ) -> AnalysisReport {
        self.run(&ProfileView::live(cct).with_timeline(timeline))
    }

    fn run(&self, view: &ProfileView<'_>) -> AnalysisReport {
        let mut issues = Vec::new();
        for rule in &self.rules {
            issues.extend(rule.analyze(view));
        }
        issues.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(b.weight.total_cmp(&a.weight))
        });
        AnalysisReport::new(issues)
    }
}

impl std::fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzer")
            .field(
                "rules",
                &self
                    .rules
                    .iter()
                    .map(|r| r.name().to_owned())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}
