//! Framework errors.

use std::fmt;

use sim_gpu::GpuError;

/// Errors surfaced by the simulated frameworks.
#[derive(Debug)]
pub enum FrameworkError {
    /// Operator inputs were inconsistent.
    ShapeMismatch {
        /// Operator name.
        op: String,
        /// What went wrong.
        message: String,
    },
    /// The calling OS thread has no bound simulated thread context.
    NoCurrentThread,
    /// The underlying GPU runtime failed.
    Gpu(GpuError),
    /// The backward engine is gone (engine dropped mid-backward).
    BackwardEngineDown,
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::ShapeMismatch { op, message } => {
                write!(f, "shape mismatch in {op}: {message}")
            }
            FrameworkError::NoCurrentThread => {
                write!(f, "no simulated thread bound to the current OS thread")
            }
            FrameworkError::Gpu(e) => write!(f, "gpu runtime failure: {e}"),
            FrameworkError::BackwardEngineDown => write!(f, "backward engine terminated"),
        }
    }
}

impl std::error::Error for FrameworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameworkError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for FrameworkError {
    fn from(e: GpuError) -> Self {
        FrameworkError::Gpu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = FrameworkError::ShapeMismatch {
            op: "aten::matmul".into(),
            message: "inner dims differ".into(),
        };
        assert!(e.to_string().contains("aten::matmul"));
        let g: FrameworkError = GpuError::NoSuchDevice(3).into();
        assert!(g.to_string().contains("device"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrameworkError>();
    }
}
