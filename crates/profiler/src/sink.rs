//! Event-sink re-exports.
//!
//! The ingestion pipeline — the [`EventSink`] contract, the synchronous
//! [`ShardedSink`], and the asynchronous bounded-channel [`AsyncSink`] —
//! lives in its own crate, `deepcontext-pipeline`, so the profiler, the
//! benchmarks and external embedders share one implementation. This
//! module re-exports it under the historical `deepcontext_profiler::sink`
//! path.

pub use deepcontext_pipeline::{
    attribute_activity_metrics, default_directory_map, default_ingestion_mode,
    default_journal_config, default_journal_enabled, default_launch_batch,
    default_telemetry_config, default_telemetry_enabled, default_timeline_config,
    default_timeline_enabled, journal_sites, AsyncSink, BackpressurePolicy, BatchingSink,
    DirectoryMap, DirectoryMapKind, EventSink, Failpoints, HealthReport, HealthThresholds,
    IngestionMode, Journal, JournalConfig, JournalSeverity, PipelineConfig, PipelineTelemetry,
    ShardedSink, SinkCounters, Supervisor, SupervisorConfig, SupervisorSink, SupervisorState,
    Telemetry, TelemetryConfig, TelemetrySnapshot, TimelineConfig, TimelineSnapshot, TimelineStats,
    DEFAULT_LAUNCH_BATCH,
};
