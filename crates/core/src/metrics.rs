//! Metric kinds and online aggregation.
//!
//! The paper (§4.2) aggregates metrics of the same type within a calling
//! context *online* — "sum, minimum, average, and standard deviation" — so
//! that profile size depends on the number of distinct contexts, not the
//! number of events. [`MetricStat`] implements that aggregation with
//! Welford's algorithm; [`MetricStore`] maps metric kinds to stats at one
//! tree node.

use std::fmt;

use crate::interner::Sym;

/// Fine-grained GPU instruction stall reasons (paper §6.7).
///
/// Matches the taxonomy exposed by Nvidia/AMD instruction-sampling APIs and
/// consumed by the analyzer's fine-grained stall analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallReason {
    /// Waiting on a global/local memory dependency.
    MemoryDependency,
    /// Waiting on an arithmetic pipeline result (math dependency).
    MathDependency,
    /// Constant-memory (immediate constant cache) miss.
    ConstantMemory,
    /// Waiting on a prior instruction of the same warp.
    ExecutionDependency,
    /// Memory pipe throttled.
    MemoryThrottle,
    /// Warp eligible but not selected by the scheduler.
    NotSelected,
    /// Barrier / synchronization wait.
    Synchronization,
    /// Instruction fetch stall.
    InstructionFetch,
    /// No stall (issued).
    None,
    /// Anything else.
    Other,
}

impl StallReason {
    /// All reasons, for iteration and reporting.
    pub const ALL: [StallReason; 10] = [
        StallReason::MemoryDependency,
        StallReason::MathDependency,
        StallReason::ConstantMemory,
        StallReason::ExecutionDependency,
        StallReason::MemoryThrottle,
        StallReason::NotSelected,
        StallReason::Synchronization,
        StallReason::InstructionFetch,
        StallReason::None,
        StallReason::Other,
    ];

    pub(crate) fn code(self) -> u8 {
        match self {
            StallReason::MemoryDependency => 0,
            StallReason::MathDependency => 1,
            StallReason::ConstantMemory => 2,
            StallReason::ExecutionDependency => 3,
            StallReason::MemoryThrottle => 4,
            StallReason::NotSelected => 5,
            StallReason::Synchronization => 6,
            StallReason::InstructionFetch => 7,
            StallReason::None => 8,
            StallReason::Other => 9,
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<Self> {
        StallReason::ALL.into_iter().find(|r| r.code() == code)
    }
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallReason::MemoryDependency => "memory_dependency",
            StallReason::MathDependency => "math_dependency",
            StallReason::ConstantMemory => "constant_memory",
            StallReason::ExecutionDependency => "execution_dependency",
            StallReason::MemoryThrottle => "memory_throttle",
            StallReason::NotSelected => "not_selected",
            StallReason::Synchronization => "synchronization",
            StallReason::InstructionFetch => "instruction_fetch",
            StallReason::None => "issued",
            StallReason::Other => "other",
        };
        f.write_str(s)
    }
}

/// The type of a performance metric attributed to a calling context.
///
/// Coarse-grained kinds (times, launches, occupancy, memory) come from the
/// GPU callback/activity APIs and CPU sampling; fine-grained kinds (stall
/// samples) come from instruction sampling.
///
/// The `Ord` order is arbitrary but stable — [`MetricStore`] keeps its
/// entries sorted by it so lookups can binary-search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricKind {
    /// GPU kernel execution time, nanoseconds.
    GpuTime,
    /// Count of GPU kernel launches.
    KernelLaunches,
    /// Bytes moved by memcpy operations.
    MemcpyBytes,
    /// GPU memcpy time, nanoseconds.
    MemcpyTime,
    /// Bytes allocated on device.
    GpuAllocBytes,
    /// Shared memory per block, bytes.
    SharedMemPerBlock,
    /// Registers per thread.
    RegistersPerThread,
    /// Achieved occupancy (0..=1 per kernel instance).
    Occupancy,
    /// Number of warps per launch.
    Warps,
    /// Number of blocks (CTAs) per launch.
    Blocks,
    /// CPU time, nanoseconds (from CPU_TIME sampling).
    CpuTime,
    /// Wall-clock time, nanoseconds (from REAL_TIME sampling).
    RealTime,
    /// Hardware-counter: retired instructions.
    HwInstructions,
    /// Hardware-counter: cache misses.
    HwCacheMisses,
    /// Hardware-counter: branch mispredictions.
    HwBranchMisses,
    /// GPU instruction samples (count).
    InstructionSamples,
    /// Profiler events discarded by an overloaded ingestion pipeline
    /// (the `DropOldest` backpressure policy), attributed to a synthetic
    /// `<dropped>` context so overload is visible in the profile itself.
    DroppedEvents,
    /// Profiler events discarded because their shard was quarantined
    /// after a worker panic, attributed to a synthetic `<poisoned>`
    /// context so fault isolation is visible in the profile itself.
    PoisonedEvents,
    /// GPU instruction samples stalled for a specific reason (count).
    Stall(StallReason),
    /// A user-defined metric named by an interned symbol.
    Custom(Sym),
}

impl MetricKind {
    /// Returns `true` for metric kinds measured in nanoseconds.
    pub fn is_time(self) -> bool {
        matches!(
            self,
            MetricKind::GpuTime
                | MetricKind::MemcpyTime
                | MetricKind::CpuTime
                | MetricKind::RealTime
        )
    }

    /// Short stable name used in reports and the profile database.
    pub fn name(self) -> String {
        match self {
            MetricKind::GpuTime => "gpu_time".into(),
            MetricKind::KernelLaunches => "kernel_launches".into(),
            MetricKind::MemcpyBytes => "memcpy_bytes".into(),
            MetricKind::MemcpyTime => "memcpy_time".into(),
            MetricKind::GpuAllocBytes => "gpu_alloc_bytes".into(),
            MetricKind::SharedMemPerBlock => "shared_mem_per_block".into(),
            MetricKind::RegistersPerThread => "registers_per_thread".into(),
            MetricKind::Occupancy => "occupancy".into(),
            MetricKind::Warps => "warps".into(),
            MetricKind::Blocks => "blocks".into(),
            MetricKind::CpuTime => "cpu_time".into(),
            MetricKind::RealTime => "real_time".into(),
            MetricKind::HwInstructions => "hw_instructions".into(),
            MetricKind::HwCacheMisses => "hw_cache_misses".into(),
            MetricKind::HwBranchMisses => "hw_branch_misses".into(),
            MetricKind::InstructionSamples => "instruction_samples".into(),
            MetricKind::DroppedEvents => "dropped_events".into(),
            MetricKind::PoisonedEvents => "poisoned_events".into(),
            MetricKind::Stall(r) => format!("stall.{r}"),
            MetricKind::Custom(sym) => format!("custom.{}", sym.index()),
        }
    }

    pub(crate) fn to_record(self) -> String {
        match self {
            MetricKind::Stall(r) => format!("S{}", r.code()),
            MetricKind::Custom(sym) => format!("C{}", sym.index()),
            other => format!("B{}", other.base_code()),
        }
    }

    pub(crate) fn from_record(s: &str) -> Result<Self, crate::CoreError> {
        let (tag, rest) = s.split_at(1.min(s.len()));
        let n: u32 = rest
            .parse()
            .map_err(|e| crate::CoreError::parse(format!("bad metric kind {s:?}: {e}")))?;
        match tag {
            "S" => StallReason::from_code(n as u8)
                .map(MetricKind::Stall)
                .ok_or_else(|| crate::CoreError::parse(format!("bad stall code {n}"))),
            "C" => Ok(MetricKind::Custom(Sym(n))),
            "B" => MetricKind::from_base_code(n as u8)
                .ok_or_else(|| crate::CoreError::parse(format!("bad metric code {n}"))),
            other => Err(crate::CoreError::parse(format!("bad metric tag {other:?}"))),
        }
    }

    fn base_code(self) -> u8 {
        match self {
            MetricKind::GpuTime => 0,
            MetricKind::KernelLaunches => 1,
            MetricKind::MemcpyBytes => 2,
            MetricKind::MemcpyTime => 3,
            MetricKind::GpuAllocBytes => 4,
            MetricKind::SharedMemPerBlock => 5,
            MetricKind::RegistersPerThread => 6,
            MetricKind::Occupancy => 7,
            MetricKind::Warps => 8,
            MetricKind::Blocks => 9,
            MetricKind::CpuTime => 10,
            MetricKind::RealTime => 11,
            MetricKind::HwInstructions => 12,
            MetricKind::HwCacheMisses => 13,
            MetricKind::HwBranchMisses => 14,
            MetricKind::InstructionSamples => 15,
            MetricKind::DroppedEvents => 16,
            MetricKind::PoisonedEvents => 17,
            MetricKind::Stall(_) | MetricKind::Custom(_) => unreachable!("encoded separately"),
        }
    }

    fn from_base_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => MetricKind::GpuTime,
            1 => MetricKind::KernelLaunches,
            2 => MetricKind::MemcpyBytes,
            3 => MetricKind::MemcpyTime,
            4 => MetricKind::GpuAllocBytes,
            5 => MetricKind::SharedMemPerBlock,
            6 => MetricKind::RegistersPerThread,
            7 => MetricKind::Occupancy,
            8 => MetricKind::Warps,
            9 => MetricKind::Blocks,
            10 => MetricKind::CpuTime,
            11 => MetricKind::RealTime,
            12 => MetricKind::HwInstructions,
            13 => MetricKind::HwCacheMisses,
            14 => MetricKind::HwBranchMisses,
            15 => MetricKind::InstructionSamples,
            16 => MetricKind::DroppedEvents,
            17 => MetricKind::PoisonedEvents,
            _ => return None,
        })
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Online aggregate of one metric kind at one calling context.
///
/// Maintains count, sum, min, max, and mean/variance via Welford's
/// algorithm, so adding a sample is O(1) and no per-event storage is
/// retained — the core of the paper's memory-overhead advantage over
/// trace-based profilers.
///
/// # Examples
///
/// ```
/// use deepcontext_core::MetricStat;
///
/// let mut stat = MetricStat::new();
/// for v in [2.0, 4.0, 6.0] {
///     stat.add(v);
/// }
/// assert_eq!(stat.count, 3);
/// assert_eq!(stat.sum, 12.0);
/// assert_eq!(stat.min, 2.0);
/// assert_eq!(stat.max, 6.0);
/// assert!((stat.mean() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricStat {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest sample (`f64::NEG_INFINITY` when empty).
    pub max: f64,
    mean: f64,
    m2: f64,
}

impl MetricStat {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        MetricStat {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Merges another aggregate into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &MetricStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The aggregate of the samples added to `new` since it looked like
    /// `old` — the inverse of [`merge`](Self::merge), valid only for
    /// *append-only* histories (`new` is `old` plus further `add`s, which
    /// is how CCT nodes evolve during profiling). Merging the returned
    /// stat into any aggregate that already contains `old`'s samples
    /// yields the aggregate of `new`'s samples: count and sum are exact;
    /// min/max carry `new`'s bounds (correct because `new`'s extrema
    /// subsume `old`'s); mean and variance are recovered by inverting the
    /// parallel Welford merge, exact up to f64 rounding.
    pub fn delta_since(new: &MetricStat, old: &MetricStat) -> MetricStat {
        if old.count == 0 {
            return *new;
        }
        debug_assert!(
            old.count <= new.count,
            "delta_since needs append-only stats"
        );
        let count = new.count.saturating_sub(old.count);
        if count == 0 {
            return MetricStat::new();
        }
        let sum = new.sum - old.sum;
        let mean = sum / count as f64;
        let delta = mean - old.mean;
        let m2 = (new.m2
            - old.m2
            - delta * delta * (old.count as f64) * (count as f64) / (new.count as f64))
            .max(0.0);
        MetricStat {
            count,
            sum,
            min: new.min,
            max: new.max,
            mean,
            m2,
        }
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 for fewer than 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Whether no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub(crate) fn to_record(self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            self.count, self.sum, self.min, self.max, self.mean, self.m2
        )
    }

    pub(crate) fn from_record_fields<'a>(
        mut fields: impl Iterator<Item = &'a str>,
    ) -> Result<Self, crate::CoreError> {
        let mut next_f64 = |what: &str| -> Result<f64, crate::CoreError> {
            fields
                .next()
                .ok_or_else(|| crate::CoreError::parse(format!("missing {what}")))?
                .parse::<f64>()
                .map_err(|e| crate::CoreError::parse(format!("bad {what}: {e}")))
        };
        let count = next_f64("count")? as u64;
        let sum = next_f64("sum")?;
        let min = next_f64("min")?;
        let max = next_f64("max")?;
        let mean = next_f64("mean")?;
        let m2 = next_f64("m2")?;
        Ok(MetricStat {
            count,
            sum,
            min,
            max,
            mean,
            m2,
        })
    }
}

/// Per-node map from metric kind to aggregate.
///
/// Stored as a small vector kept **sorted by kind**: nodes typically carry
/// only a handful of metric kinds, so a `HashMap` per node would waste
/// memory, and the sorted layout lets every lookup binary-search instead
/// of scanning — attribution touches this map once per event, so at the
/// ~10-kind scale the store stays allocation-free on lookups and pays at
/// most one small `memmove` when a node sees a brand-new kind.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricStore {
    entries: Vec<(MetricKind, MetricStat)>,
}

impl MetricStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of `kind` (`Ok`) or its sorted insertion point (`Err`).
    #[inline]
    fn position(&self, kind: MetricKind) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(&kind))
    }

    /// Adds a sample of `kind`.
    pub fn add(&mut self, kind: MetricKind, value: f64) {
        match self.position(kind) {
            Ok(i) => self.entries[i].1.add(value),
            Err(i) => {
                let mut stat = MetricStat::new();
                stat.add(value);
                self.entries.insert(i, (kind, stat));
            }
        }
    }

    /// Merges a whole aggregate of `kind` (used by CCT merging).
    pub fn merge_stat(&mut self, kind: MetricKind, other: &MetricStat) {
        match self.position(kind) {
            Ok(i) => self.entries[i].1.merge(other),
            Err(i) => self.entries.insert(i, (kind, *other)),
        }
    }

    /// Merges all aggregates from `other`.
    pub fn merge(&mut self, other: &MetricStore) {
        for (kind, stat) in &other.entries {
            self.merge_stat(*kind, stat);
        }
    }

    /// Merges only what `new` accumulated since it looked like `old`
    /// (see [`MetricStat::delta_since`]). `old` must be an earlier state
    /// of the *same* store: kinds never disappear and per-kind histories
    /// are append-only. Kinds whose sample count did not advance are
    /// skipped entirely, making repeated incremental folds of a mostly
    /// quiet store O(changed kinds).
    pub fn merge_delta(&mut self, new: &MetricStore, old: &MetricStore) {
        for (kind, stat) in &new.entries {
            match old.get(*kind) {
                None => self.merge_stat(*kind, stat),
                Some(o) if o.count == stat.count => {}
                Some(o) => self.merge_stat(*kind, &MetricStat::delta_since(stat, o)),
            }
        }
    }

    /// The aggregate for `kind`, if any samples were recorded.
    pub fn get(&self, kind: MetricKind) -> Option<&MetricStat> {
        self.position(kind).ok().map(|i| &self.entries[i].1)
    }

    /// Sum for `kind`, or 0 if absent (the most common query).
    pub fn sum(&self, kind: MetricKind) -> f64 {
        self.get(kind).map(|s| s.sum).unwrap_or(0.0)
    }

    /// Sample count for `kind`, or 0 if absent.
    pub fn count(&self, kind: MetricKind) -> u64 {
        self.get(kind).map(|s| s.count).unwrap_or(0)
    }

    /// Iterates (kind, stat) pairs in kind-sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (MetricKind, &MetricStat)> {
        self.entries.iter().map(|(k, s)| (*k, s))
    }

    /// Number of distinct metric kinds recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no metrics are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap bytes (for memory-overhead accounting).
    pub fn approx_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(MetricKind, MetricStat)>()
    }
}

impl FromIterator<(MetricKind, MetricStat)> for MetricStore {
    fn from_iter<I: IntoIterator<Item = (MetricKind, MetricStat)>>(iter: I) -> Self {
        let mut store = MetricStore::new();
        for (kind, stat) in iter {
            store.merge_stat(kind, &stat);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_stddev(values: &[f64]) -> f64 {
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n).sqrt()
    }

    #[test]
    fn stat_tracks_count_sum_min_max() {
        let mut s = MetricStat::new();
        assert!(s.is_empty());
        for v in [5.0, 1.0, 3.0] {
            s.add(v);
        }
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 9.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_naive_stddev() {
        let values = [3.0, 7.0, 7.0, 19.0, 24.0, 1.5];
        let mut s = MetricStat::new();
        for v in values {
            s.add(v);
        }
        assert!((s.stddev() - naive_stddev(&values)).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_single_stream() {
        let values = [1.0, 2.0, 3.0, 10.0, 20.0, 30.0, -5.0];
        let mut whole = MetricStat::new();
        for v in values {
            whole.add(v);
        }
        let mut a = MetricStat::new();
        let mut b = MetricStat::new();
        for (i, v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.add(*v);
            } else {
                b.add(*v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count, whole.count);
        assert!((a.sum - whole.sum).abs() < 1e-9);
        assert_eq!(a.min, whole.min);
        assert_eq!(a.max, whole.max);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = MetricStat::new();
        a.add(4.0);
        let before = a;
        a.merge(&MetricStat::new());
        assert_eq!(a, before);

        let mut empty = MetricStat::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn delta_since_recovers_the_appended_samples() {
        let mut old = MetricStat::new();
        for v in [4.0, 9.0, 1.0] {
            old.add(v);
        }
        let mut new = old;
        for v in [7.0, 0.5, 12.0] {
            new.add(v);
        }
        let delta = MetricStat::delta_since(&new, &old);
        assert_eq!(delta.count, 3);
        assert_eq!(delta.sum, 19.5);

        // Folding old + delta into a third aggregate matches folding new.
        let mut base = MetricStat::new();
        base.add(100.0);
        let mut via_delta = base;
        via_delta.merge(&old);
        via_delta.merge(&delta);
        let mut direct = base;
        direct.merge(&new);
        assert_eq!(via_delta.count, direct.count);
        assert_eq!(via_delta.sum, direct.sum);
        assert_eq!(via_delta.min, direct.min);
        assert_eq!(via_delta.max, direct.max);
        assert!((via_delta.mean() - direct.mean()).abs() < 1e-9);
        assert!((via_delta.stddev() - direct.stddev()).abs() < 1e-9);
    }

    #[test]
    fn delta_since_empty_old_is_new_and_unchanged_is_empty() {
        let mut new = MetricStat::new();
        new.add(3.0);
        assert_eq!(MetricStat::delta_since(&new, &MetricStat::new()), new);
        assert!(MetricStat::delta_since(&new, &new).is_empty());
    }

    #[test]
    fn store_merge_delta_folds_only_advanced_kinds() {
        let mut old = MetricStore::new();
        old.add(MetricKind::GpuTime, 10.0);
        old.add(MetricKind::Warps, 32.0);
        let mut new = old.clone();
        new.add(MetricKind::GpuTime, 5.0);
        new.add(MetricKind::CpuTime, 2.0); // kind born after `old`

        let mut dest = MetricStore::new();
        dest.merge(&old);
        dest.merge_delta(&new, &old);

        let mut direct = MetricStore::new();
        direct.merge(&new);
        assert_eq!(
            dest.sum(MetricKind::GpuTime),
            direct.sum(MetricKind::GpuTime)
        );
        assert_eq!(
            dest.count(MetricKind::GpuTime),
            direct.count(MetricKind::GpuTime)
        );
        assert_eq!(dest.sum(MetricKind::Warps), 32.0);
        assert_eq!(dest.sum(MetricKind::CpuTime), 2.0);
        assert_eq!(dest.len(), direct.len());
    }

    #[test]
    fn stddev_of_single_sample_is_zero() {
        let mut s = MetricStat::new();
        s.add(42.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn store_separates_kinds() {
        let mut store = MetricStore::new();
        store.add(MetricKind::GpuTime, 10.0);
        store.add(MetricKind::GpuTime, 20.0);
        store.add(MetricKind::CpuTime, 5.0);
        store.add(MetricKind::Stall(StallReason::ConstantMemory), 1.0);
        assert_eq!(store.sum(MetricKind::GpuTime), 30.0);
        assert_eq!(store.count(MetricKind::GpuTime), 2);
        assert_eq!(store.sum(MetricKind::CpuTime), 5.0);
        assert_eq!(
            store.sum(MetricKind::Stall(StallReason::ConstantMemory)),
            1.0
        );
        assert_eq!(
            store.sum(MetricKind::Stall(StallReason::MathDependency)),
            0.0
        );
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn store_merge_combines() {
        let mut a = MetricStore::new();
        a.add(MetricKind::GpuTime, 1.0);
        let mut b = MetricStore::new();
        b.add(MetricKind::GpuTime, 2.0);
        b.add(MetricKind::Warps, 32.0);
        a.merge(&b);
        assert_eq!(a.sum(MetricKind::GpuTime), 3.0);
        assert_eq!(a.sum(MetricKind::Warps), 32.0);
    }

    #[test]
    fn metric_kind_record_round_trip() {
        let i = crate::Interner::new();
        let custom = MetricKind::Custom(i.intern("my_metric"));
        let kinds = [
            MetricKind::GpuTime,
            MetricKind::KernelLaunches,
            MetricKind::MemcpyBytes,
            MetricKind::MemcpyTime,
            MetricKind::GpuAllocBytes,
            MetricKind::SharedMemPerBlock,
            MetricKind::RegistersPerThread,
            MetricKind::Occupancy,
            MetricKind::Warps,
            MetricKind::Blocks,
            MetricKind::CpuTime,
            MetricKind::RealTime,
            MetricKind::HwInstructions,
            MetricKind::HwCacheMisses,
            MetricKind::HwBranchMisses,
            MetricKind::InstructionSamples,
            MetricKind::DroppedEvents,
            MetricKind::PoisonedEvents,
            MetricKind::Stall(StallReason::MathDependency),
            custom,
        ];
        for k in kinds {
            let rec = k.to_record();
            assert_eq!(MetricKind::from_record(&rec).unwrap(), k, "record {rec:?}");
        }
    }

    #[test]
    fn store_entries_stay_sorted_regardless_of_insertion_order() {
        let i = crate::Interner::new();
        let kinds = [
            MetricKind::Stall(StallReason::Other),
            MetricKind::GpuTime,
            MetricKind::Custom(i.intern("late")),
            MetricKind::CpuTime,
            MetricKind::DroppedEvents,
            MetricKind::Stall(StallReason::MemoryDependency),
        ];
        let mut forward = MetricStore::new();
        for k in kinds {
            forward.add(k, 1.0);
        }
        let mut backward = MetricStore::new();
        for k in kinds.iter().rev() {
            backward.add(*k, 1.0);
        }
        let fwd: Vec<MetricKind> = forward.iter().map(|(k, _)| k).collect();
        let bwd: Vec<MetricKind> = backward.iter().map(|(k, _)| k).collect();
        assert_eq!(fwd, bwd, "iteration order is insertion-independent");
        assert!(fwd.windows(2).all(|w| w[0] < w[1]), "sorted by kind");
        for k in kinds {
            assert_eq!(forward.get(k).map(|s| s.count), Some(1));
        }
        assert_eq!(forward.get(MetricKind::RealTime), None);
    }

    #[test]
    fn stall_reason_codes_round_trip() {
        for r in StallReason::ALL {
            assert_eq!(StallReason::from_code(r.code()), Some(r));
        }
    }
}
