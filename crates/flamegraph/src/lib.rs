//! Flame-graph views and renderers — the library half of DeepContext's
//! GUI (paper §4.4).
//!
//! The paper's GUI is a VSCode WebView; its *analytical* content is
//! reproduced here as a renderable model:
//!
//! * [`FlameGraph::top_down`] — the direct calling-context-tree view
//!   (paper Figure 9);
//! * [`FlameGraph::bottom_up`] — the inverted view that "aggregates
//!   individual metrics at the same node across different call paths"
//!   (paper Figure 8);
//! * hotspot highlighting and analyzer-issue colour coding
//!   ([`FlameGraph::annotate`]);
//! * renderers: ASCII (terminal), SVG (standalone file), Brendan-Gregg
//!   folded stacks, and a JSON export shaped for WebView consumers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod folded;
mod graph;
mod json;
mod svg;

pub use ascii::AsciiOptions;
pub use folded::parse_folded;
pub use graph::{FlameGraph, FlameNode};
pub use svg::SvgOptions;
