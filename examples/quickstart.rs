//! Quickstart: profile a workload end to end and print the analysis.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds an A100 test bed, attaches DLMonitor and the profiler, runs
//! three training iterations of DLRM-small, then prints the top-down
//! flame graph and the analyzer's findings — including the §6.1
//! `aten::index` backward abnormality.

use deepcontext::prelude::*;
use deepcontext_flamegraph::AsciiOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A simulated evaluation platform with eager + JIT engines.
    let bed = TestBed::new(DeviceSpec::a100_sxm());

    // 2. dlmonitor_init + attach interception to the framework and GPU.
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());

    // 3. Attach the profiler (Python + framework + native call paths).
    let profiler = Profiler::attach(
        ProfilerConfig::deepcontext_native(),
        bed.env(),
        &monitor,
        bed.gpu(),
    );

    // 4. Run the workload.
    let stats = bed.run_eager(&DlrmSmall, &WorkloadOptions::default(), 3)?;
    println!(
        "ran {} iterations: {} kernels, {} GPU busy, {} wall",
        stats.iterations, stats.kernels, stats.gpu_busy, stats.wall
    );

    // 5. Finish the profile and analyze it.
    let db = profiler.finish(ProfileMeta {
        workload: "dlrm-small".into(),
        framework: "eager".into(),
        platform: "nvidia-a100".into(),
        iterations: 3,
        ..Default::default()
    });
    let report = Analyzer::with_default_rules().analyze(&db);

    println!("\n=== top-down flame graph (GPU time) ===");
    let mut flame = FlameGraph::top_down(db.cct(), MetricKind::GpuTime);
    flame.highlight_hotspots(0.2);
    flame.annotate(&report);
    print!(
        "{}",
        flame.to_ascii(&AsciiOptions {
            min_share: 0.03,
            ..Default::default()
        })
    );

    println!("\n=== analyzer report ===");
    print!("{report}");

    // 6. Persist the profile.
    let mut buf = Vec::new();
    db.save(&mut buf)?;
    println!("profile database: {} bytes", buf.len());
    Ok(())
}
