//! CUPTI/RocTracer-style API callbacks.
//!
//! Profilers subscribe to the runtime and receive an Enter and an Exit
//! callback around every GPU API call, carrying the correlation ID that
//! later links asynchronous activity records back to the call site —
//! exactly the CUPTI driver-API callback contract DeepContext builds on.

use std::sync::Arc;

use deepcontext_core::TimeNs;

use crate::kernel::KernelDesc;
use crate::runtime::{CorrelationId, DeviceId, StreamId};
use crate::spec::Vendor;

/// Which GPU API is being intercepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApiKind {
    /// Kernel launch.
    LaunchKernel,
    /// Asynchronous memcpy.
    MemcpyAsync,
    /// Device memory allocation.
    MemAlloc,
    /// Device memory free.
    MemFree,
    /// Device synchronize.
    Synchronize,
}

impl ApiKind {
    /// Vendor-specific API name, as a real tracer would report it.
    pub fn api_name(self, vendor: Vendor) -> &'static str {
        match (vendor, self) {
            (Vendor::Nvidia, ApiKind::LaunchKernel) => "cuLaunchKernel",
            (Vendor::Nvidia, ApiKind::MemcpyAsync) => "cuMemcpyAsync",
            (Vendor::Nvidia, ApiKind::MemAlloc) => "cuMemAlloc",
            (Vendor::Nvidia, ApiKind::MemFree) => "cuMemFree",
            (Vendor::Nvidia, ApiKind::Synchronize) => "cuCtxSynchronize",
            (Vendor::Amd, ApiKind::LaunchKernel) => "hipModuleLaunchKernel",
            (Vendor::Amd, ApiKind::MemcpyAsync) => "hipMemcpyAsync",
            (Vendor::Amd, ApiKind::MemAlloc) => "hipMalloc",
            (Vendor::Amd, ApiKind::MemFree) => "hipFree",
            (Vendor::Amd, ApiKind::Synchronize) => "hipDeviceSynchronize",
        }
    }

    /// The library a tracer attributes the API to.
    pub fn api_library(self, vendor: Vendor) -> &'static str {
        match vendor {
            Vendor::Nvidia => "libcuda.so",
            Vendor::Amd => "libamdhip64.so",
        }
    }
}

/// Enter (before) or Exit (after) the API call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallbackSite {
    /// Before the API executes.
    Enter,
    /// After the API executed.
    Exit,
}

/// Data passed to API callbacks.
#[derive(Debug, Clone)]
pub struct CallbackData {
    /// Enter or exit.
    pub site: CallbackSite,
    /// Which API.
    pub api: ApiKind,
    /// Correlation id tying this call to its activity records.
    pub correlation_id: CorrelationId,
    /// Target device.
    pub device: DeviceId,
    /// Target stream (launch/memcpy only).
    pub stream: Option<StreamId>,
    /// The kernel being launched (launch only). The function object a real
    /// profiler would parse (`CUfunction`) to obtain the kernel name.
    pub kernel: Option<Arc<KernelDesc>>,
    /// Bytes involved (memcpy/malloc/free).
    pub bytes: Option<u64>,
    /// Virtual timestamp of the callback.
    pub timestamp: TimeNs,
}

/// Identifier of a registered subscriber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriberId(pub(crate) u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_names_follow_vendor() {
        assert_eq!(
            ApiKind::LaunchKernel.api_name(Vendor::Nvidia),
            "cuLaunchKernel"
        );
        assert_eq!(
            ApiKind::LaunchKernel.api_name(Vendor::Amd),
            "hipModuleLaunchKernel"
        );
        assert_eq!(ApiKind::MemAlloc.api_name(Vendor::Amd), "hipMalloc");
        assert_eq!(
            ApiKind::Synchronize.api_name(Vendor::Nvidia),
            "cuCtxSynchronize"
        );
    }

    #[test]
    fn api_libraries_follow_vendor() {
        assert_eq!(
            ApiKind::LaunchKernel.api_library(Vendor::Nvidia),
            "libcuda.so"
        );
        assert_eq!(ApiKind::MemFree.api_library(Vendor::Amd), "libamdhip64.so");
    }
}
