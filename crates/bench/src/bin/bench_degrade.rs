//! Emits `BENCH_degrade.json`: accuracy under overload of the
//! supervisor's sampled degradation vs blind `DropOldest` eviction, on
//! a skewed workload (one hot kernel stream dominating a set of cold
//! ones), plus the Healthy-state admission cost of [`SupervisorSink`].
//!
//! The workload is *phased* the way real overload is: the cold
//! contexts' launches land first (epoch-start data-loading and setup
//! kernels), then the hot stream floods in. Blind `DropOldest` keeps
//! whatever fits the queue — the newest events, i.e. the hot tail — so
//! the cold contexts are wiped from the profile and no recorded scale
//! factor can bring them back: their relative error is 1.0 (and the
//! global-rescale estimate of the survivors is arbitrarily biased).
//! Degraded-mode sampled ingestion instead admits a deterministic
//! 1-in-N of *every* stream (keyed on correlation id) and records N as
//! the scale factor, so `admitted x N` tracks every per-context count
//! within a bounded relative error — `sampled_error_ratio`, gated by
//! `target_sampled_error_ratio`.
//!
//! `supervisor_overhead` (gated, lower-is-better) is the producer-side
//! cost ratio of the same launch stream through a Healthy
//! [`SupervisorSink`] over the bare synchronous sink: the admission
//! fast path is one relaxed atomic load and must stay in the noise.
//!
//! Run from the repo root: `cargo run --release -p deepcontext-bench
//! --bin bench_degrade`.

use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use deepcontext_core::{CallPath, CallingContextTree, Frame, FrameKind, Interner, MetricKind};
use deepcontext_profiler::{
    default_directory_map, AsyncSink, BackpressurePolicy, EventSink, Failpoints, JournalConfig,
    PipelineConfig, ShardedSink, Supervisor, SupervisorConfig, SupervisorSink, SupervisorState,
    TelemetryConfig, TimelineConfig,
};
use dlmonitor::EventOrigin;
use sim_gpu::{ApiKind, CorrelationId};

const COLD_CONTEXTS: usize = 12;
const COLD_EVENTS_PER_CONTEXT: usize = 1_600;
const HOT_EVENTS: usize = 40_800;
const TOTAL: usize = COLD_CONTEXTS * COLD_EVENTS_PER_CONTEXT + HOT_EVENTS;
const QUEUE_CAPACITY: usize = 64;
const SAMPLE_STRIDE: u64 = 8;
const OVERHEAD_REPEATS: usize = 5;
// Acceptance bars `bench-check` enforces against the committed JSON.
// Sampling error on the coldest stream (~1600 events, ~200 admitted at
// stride 8) sits well under this bar; blind dropping's is 1.0.
const TARGET_SAMPLED_ERROR_RATIO: f64 = 0.25;
// One relaxed atomic load per event on the Healthy path; the slack is
// for scheduler noise on a ~100 ns/event baseline.
const TARGET_SUPERVISOR_OVERHEAD: f64 = 1.20;

/// One launch of the phased workload.
struct Launch {
    origin: EventOrigin,
    path: CallPath,
}

fn context_name(ctx: usize) -> String {
    if ctx == COLD_CONTEXTS {
        "kernel_hot".to_string()
    } else {
        format!("kernel_cold{ctx:02}")
    }
}

fn context_path(interner: &Arc<Interner>, ctx: usize) -> CallPath {
    let mut path = CallPath::new();
    path.push(Frame::python("train.py", 42, "step", interner));
    path.push(Frame::operator(&format!("aten::op{ctx}"), interner));
    path.push(Frame::gpu_kernel(
        &context_name(ctx),
        "module.so",
        0x1000 + ctx as u64,
        interner,
    ));
    path
}

/// The phased skewed stream: every cold context's launches first, then
/// the hot flood. Cold launches pick their context by a multiplicative
/// hash of the correlation id, so context membership is decorrelated
/// from the supervisor's `corr % stride` admission predicate (a
/// round-robin assignment would alias with the stride and starve some
/// contexts of admitted samples entirely).
fn build_stream(interner: &Arc<Interner>) -> (Vec<Launch>, Vec<u64>) {
    let paths: Vec<CallPath> = (0..=COLD_CONTEXTS)
        .map(|ctx| context_path(interner, ctx))
        .collect();
    let mut stream = Vec::with_capacity(TOTAL);
    let mut truth = vec![0u64; COLD_CONTEXTS + 1];
    let mut corr = 0u64;
    let mut emit = |ctx: usize, stream: &mut Vec<Launch>, truth: &mut Vec<u64>| {
        corr += 1;
        truth[ctx] += 1;
        stream.push(Launch {
            origin: EventOrigin {
                tid: Some(1),
                stream: None,
                correlation: Some(CorrelationId(corr)),
            },
            path: paths[ctx].clone(),
        });
    };
    for i in 0..COLD_CONTEXTS * COLD_EVENTS_PER_CONTEXT {
        // The hash decides which cold context this correlation belongs
        // to; per-context truth counts come out ~uniform but not exact.
        let h = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let ctx = ((h >> 33) % COLD_CONTEXTS as u64) as usize;
        emit(ctx, &mut stream, &mut truth);
    }
    for _ in 0..HOT_EVENTS {
        emit(COLD_CONTEXTS, &mut stream, &mut truth);
    }
    (stream, truth)
}

/// Per-context `KernelLaunches` sums out of a snapshot, keyed by the
/// kernel frame's name.
fn kept_counts(cct: &CallingContextTree, interner: &Arc<Interner>) -> Vec<f64> {
    let mut kept = vec![0.0f64; COLD_CONTEXTS + 1];
    for node in cct.nodes_of_kind(FrameKind::GpuKernel) {
        let label = cct.node(node).frame().label(interner);
        let Some(stat) = cct.metric(node, MetricKind::KernelLaunches) else {
            continue;
        };
        for (ctx, slot) in kept.iter_mut().enumerate() {
            if label.contains(&context_name(ctx)) {
                *slot += stat.sum;
            }
        }
    }
    kept
}

/// Max relative error of `estimate` against `truth` across contexts.
fn max_relative_error(estimates: &[f64], truth: &[u64]) -> f64 {
    estimates
        .iter()
        .zip(truth)
        .map(|(est, t)| (est - *t as f64).abs() / *t as f64)
        .fold(0.0, f64::max)
}

/// Producer-side cost of pushing the whole stream through `sink`, best
/// of [`OVERHEAD_REPEATS`] passes, in ns/event.
fn producer_ns_per_event(
    stream: &[Launch],
    mut make_sink: impl FnMut() -> Arc<dyn EventSink>,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..OVERHEAD_REPEATS {
        let sink = make_sink();
        let start = Instant::now();
        for launch in stream {
            sink.gpu_launch(&launch.origin, &launch.path, ApiKind::LaunchKernel);
        }
        let ns = start.elapsed().as_nanos() as f64 / stream.len() as f64;
        best = best.min(ns);
    }
    best
}

fn main() {
    eprintln!(
        "measuring degradation accuracy ({TOTAL} launches: {HOT_EVENTS} hot + {COLD_CONTEXTS} \
         cold x {COLD_EVENTS_PER_CONTEXT}, queue {QUEUE_CAPACITY}, stride {SAMPLE_STRIDE})..."
    );
    let interner = Interner::new();
    let (stream, truth) = build_stream(&interner);

    // --- Blind DropOldest under overload: paused workers make the
    // backlog deterministic; the queue keeps the newest events (the hot
    // tail) and everything older is evicted.
    let blind_inner = ShardedSink::new(Arc::clone(&interner), 4);
    let blind = AsyncSink::new(
        Arc::clone(&blind_inner),
        PipelineConfig {
            workers: 1,
            queue_capacity: QUEUE_CAPACITY,
            backpressure: BackpressurePolicy::DropOldest,
            launch_batch: 1,
            ..PipelineConfig::default()
        },
    );
    blind.pause();
    for launch in &stream {
        blind.gpu_launch(&launch.origin, &launch.path, ApiKind::LaunchKernel);
    }
    blind.resume();
    let blind_cct = blind.finish_snapshot();
    let blind_kept = kept_counts(&blind_cct, &interner);
    let blind_total: f64 = blind_kept.iter().sum();
    // Blind dropping records no per-stream scale factor; the best
    // postmortem correction is a global rescale by the recorded drop
    // count — which cannot resurrect a wiped context.
    let blind_rescale = if blind_total > 0.0 {
        TOTAL as f64 / blind_total
    } else {
        0.0
    };
    let blind_estimates: Vec<f64> = blind_kept.iter().map(|k| k * blind_rescale).collect();
    let blind_error = max_relative_error(&blind_estimates, &truth);
    let blind_dropped = blind.counters().dropped_events;

    // --- Sampled degradation: the supervisor jammed into Degraded
    // admits a deterministic 1-in-stride of every stream and records
    // the stride, so estimates rescale exactly.
    let sampled_inner: Arc<dyn EventSink> = ShardedSink::new(Arc::clone(&interner), 4);
    let supervisor = Supervisor::new(SupervisorConfig {
        sample_stride: SAMPLE_STRIDE,
        ..SupervisorConfig::default()
    });
    supervisor.force_state(SupervisorState::Degraded);
    let sampled = SupervisorSink::new(sampled_inner, Arc::clone(&supervisor));
    for launch in &stream {
        sampled.gpu_launch(&launch.origin, &launch.path, ApiKind::LaunchKernel);
    }
    let sampled_cct = sampled.finish_snapshot();
    let sampled_kept = kept_counts(&sampled_cct, &interner);
    let sampled_estimates: Vec<f64> = sampled_kept
        .iter()
        .map(|k| k * SAMPLE_STRIDE as f64)
        .collect();
    let sampled_error = max_relative_error(&sampled_estimates, &truth);
    let status = supervisor.status();

    // --- Journal-on pass (untimed, informational — not `target_`
    // gated, like the telemetry pass of bench_pipeline): the same blind
    // overload with the incident journal enabled, so the committed JSON
    // tracks how many lifecycle events an overload run journals (drop
    // storms, pause/resume, drain barriers) and how many the bounded
    // ring evicts.
    let journal_inner = ShardedSink::with_journal(
        Arc::clone(&interner),
        4,
        true,
        &TimelineConfig::default(),
        default_directory_map(),
        &TelemetryConfig::default(),
        Failpoints::disabled(),
        &JournalConfig::enabled(),
    );
    let journal = Arc::clone(journal_inner.journal().expect("journal enabled"));
    let journal_sink = AsyncSink::new(
        journal_inner,
        PipelineConfig {
            workers: 1,
            queue_capacity: QUEUE_CAPACITY,
            backpressure: BackpressurePolicy::DropOldest,
            launch_batch: 1,
            ..PipelineConfig::default()
        },
    );
    journal_sink.pause();
    for launch in &stream {
        journal_sink.gpu_launch(&launch.origin, &launch.path, ApiKind::LaunchKernel);
    }
    journal_sink.resume();
    let _ = journal_sink.finish_snapshot();
    let journal_events = journal.recorded();
    let journal_evicted = journal.evicted();

    // --- Healthy-path admission cost: the same stream through the bare
    // synchronous sink vs a Healthy SupervisorSink wrapping one.
    let bare_ns = producer_ns_per_event(&stream, || {
        ShardedSink::new(Interner::new(), 4) as Arc<dyn EventSink>
    });
    let wrapped_ns = producer_ns_per_event(&stream, || {
        let inner: Arc<dyn EventSink> = ShardedSink::new(Interner::new(), 4);
        SupervisorSink::new(inner, Supervisor::new(SupervisorConfig::default()))
            as Arc<dyn EventSink>
    });
    let overhead = wrapped_ns / bare_ns;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"degrade\",\n");
    json.push_str("  \"unit\": \"max relative error of per-context launch estimates\",\n");
    json.push_str(
        "  \"workload\": \"phased skew: cold contexts first, then the hot stream floods\",\n",
    );
    json.push_str(&format!("  \"events\": {TOTAL},\n"));
    json.push_str(&format!("  \"hot_events\": {HOT_EVENTS},\n"));
    json.push_str(&format!("  \"cold_contexts\": {COLD_CONTEXTS},\n"));
    json.push_str(&format!(
        "  \"cold_events_per_context\": {COLD_EVENTS_PER_CONTEXT},\n"
    ));
    json.push_str(&format!("  \"queue_capacity\": {QUEUE_CAPACITY},\n"));
    json.push_str(&format!("  \"sample_stride\": {SAMPLE_STRIDE},\n"));
    json.push_str(&format!("  \"blind_kept_events\": {blind_total:.0},\n"));
    json.push_str(&format!("  \"blind_dropped_events\": {blind_dropped},\n"));
    // Informational (no target): blind DropOldest has no per-stream
    // scale factor, so its error is structurally unbounded — here the
    // cold contexts are wiped outright.
    json.push_str(&format!("  \"blind_error_ratio\": {blind_error:.3},\n"));
    json.push_str(&format!(
        "  \"sampled_admitted_events\": {},\n",
        status.sampled_events
    ));
    json.push_str(&format!(
        "  \"sampled_rejected_events\": {},\n",
        status.rejected_events
    ));
    json.push_str(&format!("  \"sampled_error_ratio\": {sampled_error:.3},\n"));
    json.push_str(&format!(
        "  \"target_sampled_error_ratio\": {TARGET_SAMPLED_ERROR_RATIO},\n"
    ));
    json.push_str(&format!("  \"journal_events\": {journal_events},\n"));
    json.push_str(&format!("  \"journal_evicted\": {journal_evicted},\n"));
    json.push_str(&format!(
        "  \"bare_producer_ns_per_event\": {bare_ns:.0},\n"
    ));
    json.push_str(&format!(
        "  \"supervised_producer_ns_per_event\": {wrapped_ns:.0},\n"
    ));
    json.push_str(&format!("  \"supervisor_overhead\": {overhead:.2},\n"));
    json.push_str(&format!(
        "  \"target_supervisor_overhead\": {TARGET_SUPERVISOR_OVERHEAD}\n"
    ));
    json.push_str("}\n");

    std::fs::File::create("BENCH_degrade.json")
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("write BENCH_degrade.json");
    print!("{json}");

    eprintln!(
        "blind DropOldest kept {blind_total:.0}/{TOTAL} (max rel error {blind_error:.3}); \
         degraded 1-in-{SAMPLE_STRIDE} sampling admitted {} (max rel error {sampled_error:.3}, \
         target <= {TARGET_SAMPLED_ERROR_RATIO})",
        status.sampled_events
    );
    eprintln!(
        "healthy supervisor admission: bare {bare_ns:.0} ns/event vs supervised \
         {wrapped_ns:.0} ns/event = {overhead:.2}x (target <= {TARGET_SUPERVISOR_OVERHEAD}x)"
    );
}
