//! Device models.
//!
//! The paper evaluates on two platforms (Table 2):
//!
//! | Platform | GPU | Memory | Specifications |
//! |---|---|---|---|
//! | Nvidia | A100 SXM | 80 GB | 108 SMs, 156 TF32 TFLOP/s, 2 TB/s |
//! | AMD | MI250 | 64 GB | 208 CUs, 362.1 FP16 TFLOP/s, 3.2 TB/s |
//!
//! The crucial architectural difference for the paper's §6.5 case study is
//! the warp size: 32 on Nvidia vs 64 on AMD, which halves the number of
//! warps a fixed-thread-count CTA provides and therefore the achieved
//! latency-hiding parallelism of kernels tuned for Nvidia.

use std::fmt;

/// GPU vendor. Determines API naming and tracing substrate identity
/// (CUPTI vs RocTracer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Nvidia: CUDA APIs, CUPTI tracing.
    Nvidia,
    /// AMD: HIP APIs, RocTracer tracing.
    Amd,
}

impl fmt::Display for Vendor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vendor::Nvidia => f.write_str("nvidia"),
            Vendor::Amd => f.write_str("amd"),
        }
    }
}

/// An analytic GPU device model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `A100 SXM 80GB`.
    pub name: String,
    /// Vendor.
    pub vendor: Vendor,
    /// Streaming multiprocessors (Nvidia) / compute units (AMD).
    pub sm_count: u32,
    /// Threads per warp (32 Nvidia, 64 AMD).
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks (CTAs) per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory (LDS) per SM, bytes.
    pub shared_mem_per_sm: u64,
    /// Register file per SM (32-bit registers).
    pub registers_per_sm: u64,
    /// Peak throughput at the evaluation precision, FLOP/s.
    pub peak_flops: f64,
    /// Peak memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Device memory capacity, bytes.
    pub memory_bytes: u64,
    /// Fixed CPU-side cost of a launch API call, ns.
    pub launch_overhead_ns: u64,
    /// Fixed device-side kernel setup latency, ns.
    pub kernel_latency_ns: u64,
    /// Fraction of peak bandwidth achieved on coalesced access.
    pub coalesced_efficiency: f64,
    /// Fraction of peak bandwidth achieved on strided/gather access
    /// (NCHW statistics walks, index gathers). CDNA2's effective
    /// bandwidth degrades much more on non-coalesced patterns than
    /// Ampere's — the architectural term behind the paper's §6.5
    /// observation.
    pub strided_efficiency: f64,
}

impl DeviceSpec {
    /// The paper's Nvidia platform: A100 SXM 80 GB (Table 2).
    pub fn a100_sxm() -> Self {
        DeviceSpec {
            name: "A100 SXM 80GB".into(),
            vendor: Vendor::Nvidia,
            sm_count: 108,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 164 * 1024,
            registers_per_sm: 65_536,
            peak_flops: 156e12,    // 156 TF32 TFLOP/s
            mem_bandwidth: 2.0e12, // 2 TB/s
            memory_bytes: 80 * (1 << 30),
            launch_overhead_ns: 4_000,
            kernel_latency_ns: 2_500,
            coalesced_efficiency: 0.90,
            strided_efficiency: 0.75,
        }
    }

    /// The paper's AMD platform: MI250 64 GB per GCD (Table 2).
    pub fn mi250() -> Self {
        DeviceSpec {
            name: "MI250".into(),
            vendor: Vendor::Amd,
            sm_count: 208,
            warp_size: 64,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 32,
            max_blocks_per_sm: 32,
            shared_mem_per_sm: 64 * 1024,
            registers_per_sm: 65_536 * 2,
            peak_flops: 362.1e12,  // 362.1 FP16 TFLOP/s
            mem_bandwidth: 3.2e12, // 3.2 TB/s
            memory_bytes: 64 * (1 << 30),
            launch_overhead_ns: 5_500,
            kernel_latency_ns: 3_500,
            coalesced_efficiency: 0.90,
            strided_efficiency: 0.45,
        }
    }

    /// Total warp slots across the device.
    pub fn total_warp_slots(&self) -> u64 {
        u64::from(self.sm_count) * u64::from(self.max_warps_per_sm)
    }

    /// Short platform tag used in reports (`nvidia-a100`, `amd-mi250`).
    pub fn platform_tag(&self) -> String {
        match self.vendor {
            Vendor::Nvidia => "nvidia-a100".into(),
            Vendor::Amd => "amd-mi250".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let nv = DeviceSpec::a100_sxm();
        assert_eq!(nv.sm_count, 108);
        assert_eq!(nv.warp_size, 32);
        assert!((nv.peak_flops - 156e12).abs() < 1e9);
        assert!((nv.mem_bandwidth - 2e12).abs() < 1e9);

        let amd = DeviceSpec::mi250();
        assert_eq!(amd.sm_count, 208);
        assert_eq!(amd.warp_size, 64);
        assert!((amd.peak_flops - 362.1e12).abs() < 1e9);
        assert!((amd.mem_bandwidth - 3.2e12).abs() < 1e9);
    }

    #[test]
    fn warp_slots_differ_between_vendors() {
        let nv = DeviceSpec::a100_sxm();
        let amd = DeviceSpec::mi250();
        assert_eq!(nv.total_warp_slots(), 108 * 64);
        assert_eq!(amd.total_warp_slots(), 208 * 32);
    }

    #[test]
    fn platform_tags() {
        assert_eq!(DeviceSpec::a100_sxm().platform_tag(), "nvidia-a100");
        assert_eq!(DeviceSpec::mi250().platform_tag(), "amd-mi250");
    }
}
