//! # DeepContext
//!
//! A context-aware, cross-platform, cross-framework performance profiler
//! for deep learning workloads — a from-scratch Rust reproduction of the
//! ASPLOS 2025 paper *"DeepContext: A Context-aware, Cross-platform, and
//! Cross-framework Tool for Performance Profiling and Analysis of Deep
//! Learning Workloads"*.
//!
//! This facade crate re-exports the whole system:
//!
//! | Module | Crate | Paper component |
//! |---|---|---|
//! | [`core`] | `deepcontext-core` | unified frames, call paths, calling context tree, metrics |
//! | [`monitor`] | `dlmonitor` | the DLMonitor shim layer (§4.1) |
//! | [`pipeline`] | `deepcontext-pipeline` | event-ingestion pipeline: sharded sync + bounded-channel async sinks |
//! | [`timeline`] | `deepcontext-timeline` | per-(device, stream) interval tracks, latency analysis, Chrome-trace export |
//! | [`profiler`] | `deepcontext-profiler` | metric collection & online aggregation (§4.2) |
//! | [`telemetry`] | `deepcontext-telemetry` | self-telemetry: metrics + health reports about the profiler itself |
//! | [`analyzer`] | `deepcontext-analyzer` | automated performance analyses (§4.3) |
//! | [`flamegraph`] | `deepcontext-flamegraph` | GUI views & renderers (§4.4) |
//! | [`runtime`] | `sim-runtime` | simulated CPython/native/unwinding substrate |
//! | [`gpu`] | `sim-gpu` | simulated GPU runtime with CUPTI/RocTracer contracts |
//! | [`framework`] | `dl-framework` | eager (PyTorch-like) and JIT (JAX-like) engines |
//! | [`workloads`] | `dl-models` | the ten evaluation workloads (§5) |
//! | [`baselines`] | `deepcontext-baselines` | trace-based comparison profilers |
//!
//! # Quickstart
//!
//! ```
//! use deepcontext::prelude::*;
//!
//! // A platform (paper Table 2) with both engines wired up.
//! let bed = TestBed::new(DeviceSpec::a100_sxm());
//!
//! // dlmonitor_init + interception of framework and GPU events.
//! let monitor = DlMonitor::init(bed.env(), Interner::new());
//! monitor.attach_framework(bed.eager().core().callbacks());
//! monitor.attach_gpu(bed.gpu());
//!
//! // Attach the profiler and run a workload.
//! let profiler = Profiler::attach(ProfilerConfig::default(), bed.env(), &monitor, bed.gpu());
//! bed.run_eager(&DlrmSmall, &WorkloadOptions::default(), 2)?;
//!
//! // Finish, analyze, visualise.
//! let db = profiler.finish(ProfileMeta { workload: "dlrm-small".into(), ..Default::default() });
//! let report = Analyzer::with_default_rules().analyze(&db);
//! let flame = FlameGraph::top_down(db.cct(), MetricKind::GpuTime);
//! assert!(db.cct().total(MetricKind::GpuTime) > 0.0);
//! # let _ = (report, flame);
//! # Ok::<(), dl_framework::FrameworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use deepcontext_analyzer as analyzer;
pub use deepcontext_baselines as baselines;
pub use deepcontext_core as core;
pub use deepcontext_flamegraph as flamegraph;
pub use deepcontext_pipeline as pipeline;
pub use deepcontext_profiler as profiler;
pub use deepcontext_telemetry as telemetry;
pub use deepcontext_timeline as timeline;
pub use dl_framework as framework;
pub use dl_models as workloads;
pub use dlmonitor as monitor;
pub use sim_gpu as gpu;
pub use sim_runtime as runtime;

/// Everything needed for typical profiling sessions.
pub mod prelude {
    pub use deepcontext_analyzer::{
        Analyzer, Issue, ProfileDiff, ProfileStore, RegressionRule, Rule, RunFilter, Severity,
        TrendPoint,
    };
    pub use deepcontext_core::{
        CallPath, CallingContextTree, Frame, FrameKind, Interner, MetricKind, NodeId, OpPhase,
        ProfileDb, ProfileMeta, StallReason, TimeNs, VirtualClock,
    };
    pub use deepcontext_flamegraph::FlameGraph;
    pub use deepcontext_profiler::{EventSink, Profiler, ProfilerConfig, ShardedSink};
    pub use deepcontext_telemetry::{HealthReport, TelemetryConfig, TelemetrySnapshot};
    pub use deepcontext_timeline::{TimelineConfig, TimelineSnapshot, TimelineStats};
    pub use dl_framework::{
        DType, EagerEngine, FrameworkCore, JitEngine, Layout, Op, OpKind, TensorMeta,
    };
    pub use dl_models::{
        all_workloads, workload_by_name, Conformer, DlrmSmall, Gemma, Gnn, Llama3, MultiStream,
        NanoGpt, ResNet, RunStats, TestBed, TransformerBig, UNet, ViT, Workload, WorkloadOptions,
    };
    pub use dlmonitor::{CallPathSources, DlEvent, DlMonitor, Domain};
    pub use sim_gpu::{DeviceId, DeviceSpec, GpuRuntime, SamplingConfig, StreamId, Vendor};
    pub use sim_runtime::{RuntimeEnv, ThreadRegistry};
}
