//! The assembled simulated process environment.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::addr::AddressSpace;
use crate::cpu::{CpuSamplerRegistry, CpuWork};
use crate::library::{LibraryInfo, LibraryMap};
use crate::native::Unwinder;
use crate::symbols::{FunctionInfo, LineMap, SymbolTable};
use crate::thread::{ThreadCtx, ThreadRegistry};
use deepcontext_core::VirtualClock;

/// Everything a simulated process provides to frameworks and profilers:
/// virtual time, loaded libraries, symbols, threads, the unwinder and the
/// CPU sampler registry. Cheap to clone (all members are shared handles).
///
/// # Examples
///
/// ```
/// use sim_runtime::RuntimeEnv;
/// use deepcontext_core::ThreadRole;
///
/// let env = RuntimeEnv::new();
/// let lib = env.load_library("libtorch_cpu.so", 0x10_0000);
/// let f = env.define_function(&lib, "at::native::add", 0x40, Some(("BinaryOps.cpp", 120)));
/// assert_eq!(env.symbols().resolve(f.addr).unwrap().name.as_ref(), "at::native::add");
///
/// let thread = env.threads().spawn(ThreadRole::Main);
/// assert_eq!(thread.tid(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeEnv {
    clock: VirtualClock,
    addr_space: Arc<AddressSpace>,
    libraries: Arc<LibraryMap>,
    symbols: Arc<SymbolTable>,
    lines: Arc<LineMap>,
    threads: Arc<ThreadRegistry>,
    unwinder: Arc<Unwinder>,
    samplers: Arc<CpuSamplerRegistry>,
    lib_cursor: Arc<Mutex<HashMap<String, u64>>>,
}

impl RuntimeEnv {
    /// Creates a fresh simulated process.
    pub fn new() -> Self {
        RuntimeEnv {
            clock: VirtualClock::new(),
            addr_space: Arc::new(AddressSpace::new()),
            libraries: LibraryMap::new(),
            symbols: SymbolTable::new(),
            lines: LineMap::new(),
            threads: ThreadRegistry::new(),
            unwinder: Arc::new(Unwinder::new()),
            samplers: CpuSamplerRegistry::new(),
            lib_cursor: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The process virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The loaded-library map (`LD_AUDIT` substitute).
    pub fn libraries(&self) -> &Arc<LibraryMap> {
        &self.libraries
    }

    /// The function symbol table.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.symbols
    }

    /// The DWARF-like line map.
    pub fn lines(&self) -> &Arc<LineMap> {
        &self.lines
    }

    /// The simulated thread registry.
    pub fn threads(&self) -> &Arc<ThreadRegistry> {
        &self.threads
    }

    /// The libunwind substitute.
    pub fn unwinder(&self) -> &Arc<Unwinder> {
        &self.unwinder
    }

    /// The CPU sampler registry (`sigaction`/perf substitute).
    pub fn samplers(&self) -> &Arc<CpuSamplerRegistry> {
        &self.samplers
    }

    /// Loads a simulated library, allocating its address range.
    pub fn load_library(&self, path: &str, size: u64) -> LibraryInfo {
        let base = self.addr_space.alloc(size);
        self.libraries.register(path, base, size)
    }

    /// Defines a function inside `lib`, allocating a code range and
    /// registering symbol (and optionally line) information.
    ///
    /// # Panics
    ///
    /// Panics if the library's code space is exhausted.
    pub fn define_function(
        &self,
        lib: &LibraryInfo,
        name: &str,
        size: u64,
        source: Option<(&str, u32)>,
    ) -> FunctionInfo {
        let mut cursors = self.lib_cursor.lock();
        let cursor = cursors.entry(lib.path.to_string()).or_insert(0);
        assert!(
            *cursor + size <= lib.size,
            "library {} out of code space",
            lib.path
        );
        let addr = lib.base + *cursor;
        *cursor += size;
        drop(cursors);
        if let Some((file, line)) = source {
            self.lines.add(addr, size, file, line);
        }
        self.symbols.register(name, &lib.path, addr, size)
    }

    /// Performs a chunk of CPU work on `thread`: advances the virtual
    /// clock, accumulates per-thread counters, and fires interval
    /// samplers.
    pub fn do_cpu_work(&self, thread: &Arc<ThreadCtx>, work: CpuWork) {
        self.clock.advance(work.time);
        thread.account(&work);
        self.samplers.on_work(thread, &work);
    }

    /// Accounts CPU work on `thread` (counters + samplers) **without**
    /// advancing the virtual clock. Used for worker pools running in
    /// parallel, where the caller advances the clock once by the
    /// wall-clock span of the whole pool.
    pub fn account_cpu_work(&self, thread: &Arc<ThreadCtx>, work: CpuWork) {
        thread.account(&work);
        self.samplers.on_work(thread, &work);
    }
}

impl Default for RuntimeEnv {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{SampleEvent, SampleKind};
    use deepcontext_core::{ThreadRole, TimeNs};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn load_library_registers_range() {
        let env = RuntimeEnv::new();
        let lib = env.load_library("libcudart.so", 0x1000);
        assert!(env.libraries().find(lib.base).is_some());
        assert!(env.libraries().by_basename("libcudart.so").is_some());
    }

    #[test]
    fn define_function_allocates_disjoint_ranges() {
        let env = RuntimeEnv::new();
        let lib = env.load_library("libtorch.so", 0x1000);
        let f = env.define_function(&lib, "f", 0x10, Some(("f.cpp", 1)));
        let g = env.define_function(&lib, "g", 0x10, None);
        assert!(f.addr >= lib.base && g.addr >= f.addr + 0x10);
        assert_eq!(env.symbols().resolve(g.addr).unwrap().name.as_ref(), "g");
        assert_eq!(env.lines().resolve(f.addr).unwrap().0.as_ref(), "f.cpp");
        assert!(env.lines().resolve(g.addr).is_none());
    }

    #[test]
    #[should_panic(expected = "out of code space")]
    fn define_function_past_capacity_panics() {
        let env = RuntimeEnv::new();
        let lib = env.load_library("tiny.so", 0x10);
        env.define_function(&lib, "too_big", 0x20, None);
    }

    #[test]
    fn do_cpu_work_advances_clock_counters_and_samplers() {
        let env = RuntimeEnv::new();
        let t = env.threads().spawn(ThreadRole::Main);
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        env.samplers()
            .register(SampleKind::CpuTime, 1_000, move |_t, e: SampleEvent| {
                f.fetch_add(e.count, Ordering::SeqCst);
            });
        env.do_cpu_work(&t, CpuWork::compute(TimeNs(2_500)));
        assert_eq!(env.clock().now(), TimeNs(2_500));
        assert_eq!(t.cpu_time(), TimeNs(2_500));
        assert!(t.instructions() > 0);
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn clones_share_state() {
        let env = RuntimeEnv::new();
        let env2 = env.clone();
        env.load_library("shared.so", 0x100);
        assert!(env2.libraries().by_basename("shared.so").is_some());
        let t = env.threads().spawn(ThreadRole::Main);
        assert!(env2.threads().get(t.tid()).is_some());
    }
}
