//! Measurement harness shared by the table/figure regeneration binaries
//! and the criterion benches.
//!
//! [`measure`] runs one workload on one platform/engine under one of four
//! profiler configurations — none, a trace-based framework profiler, and
//! the paper's two DeepContext configurations — returning both virtual-
//! time statistics and real (host) wall time plus profile memory, which
//! is exactly the data Figure 6 plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ingestion;
pub mod pipeline;
pub mod snapshot;
pub mod store;
pub mod timeline;

use std::time::{Duration, Instant};

use deepcontext_baselines::{TraceProfiler, TraceStyle};
use deepcontext_core::{Interner, ProfileDb, ProfileMeta};
use deepcontext_profiler::{Profiler, ProfilerConfig};
use dl_models::{RunStats, TestBed, Workload, WorkloadOptions};
use dlmonitor::DlMonitor;
use sim_gpu::DeviceSpec;

/// Which engine executes the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Eager (PyTorch-like) execution.
    Eager,
    /// JIT (JAX-like) execution.
    Jit,
}

impl EngineKind {
    /// Framework tag used in profile metadata.
    pub fn tag(self) -> &'static str {
        match self {
            EngineKind::Eager => "eager",
            EngineKind::Jit => "jit",
        }
    }
}

/// Which profiler (if any) observes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfilerKind {
    /// No profiling — the overhead baseline.
    None,
    /// The trace-based framework profiler (PyTorch/JAX profiler model).
    FrameworkTrace,
    /// DeepContext without native call paths (the paper's default).
    DeepContext,
    /// DeepContext with full native unwinding.
    DeepContextNative,
}

impl ProfilerKind {
    /// Display label (Figure 6 legend).
    pub fn label(self) -> &'static str {
        match self {
            ProfilerKind::None => "no-profiler",
            ProfilerKind::FrameworkTrace => "framework-profiler",
            ProfilerKind::DeepContext => "deepcontext",
            ProfilerKind::DeepContextNative => "deepcontext-native",
        }
    }

    /// All profiled configurations, Figure 6 order.
    pub const PROFILED: [ProfilerKind; 3] = [
        ProfilerKind::FrameworkTrace,
        ProfilerKind::DeepContext,
        ProfilerKind::DeepContextNative,
    ];
}

/// The outcome of one measured run.
#[derive(Debug)]
pub struct MeasuredRun {
    /// Virtual-time statistics from the workload run.
    pub stats: RunStats,
    /// Real (host) wall time of the run loop — the Figure 6a/6b quantity.
    pub real: Duration,
    /// Peak profile memory in bytes (0 when unprofiled) — Figure 6c/6d.
    pub profile_bytes: usize,
    /// The resulting profile (DeepContext configurations only).
    pub profile: Option<ProfileDb>,
}

/// Runs `workload` for `iterations` on a fresh platform under the given
/// configuration.
///
/// # Panics
///
/// Panics if the workload fails to run (benches treat that as fatal).
pub fn measure(
    platform: &DeviceSpec,
    workload: &dyn Workload,
    opts: &WorkloadOptions,
    engine: EngineKind,
    profiler: ProfilerKind,
    iterations: u32,
) -> MeasuredRun {
    let bed = TestBed::new(platform.clone());
    let callbacks = match engine {
        EngineKind::Eager => bed.eager().core().callbacks(),
        EngineKind::Jit => bed.jit().core().callbacks(),
    };

    let run = |bed: &TestBed| -> (RunStats, Duration) {
        let start = Instant::now();
        let stats = match engine {
            EngineKind::Eager => bed.run_eager(workload, opts, iterations),
            EngineKind::Jit => bed.run_jit(workload, opts, iterations),
        }
        .expect("workload run");
        (stats, start.elapsed())
    };

    match profiler {
        ProfilerKind::None => {
            let (stats, real) = run(&bed);
            MeasuredRun {
                stats,
                real,
                profile_bytes: 0,
                profile: None,
            }
        }
        ProfilerKind::FrameworkTrace => {
            let style = match engine {
                EngineKind::Eager => TraceStyle::Torch,
                EngineKind::Jit => TraceStyle::Jax,
            };
            let mut trace = TraceProfiler::new(style);
            trace.attach_framework(callbacks, bed.env().clock().clone());
            trace.attach_gpu(bed.gpu());
            let (stats, real) = run(&bed);
            trace.flush();
            MeasuredRun {
                stats,
                real,
                profile_bytes: trace.approx_bytes(),
                profile: None,
            }
        }
        ProfilerKind::DeepContext | ProfilerKind::DeepContextNative => {
            let monitor = DlMonitor::init(bed.env(), Interner::new());
            monitor.attach_framework(callbacks);
            monitor.attach_gpu(bed.gpu());
            let config = if profiler == ProfilerKind::DeepContext {
                ProfilerConfig::deepcontext()
            } else {
                ProfilerConfig::deepcontext_native()
            };
            let prof = Profiler::attach(config, bed.env(), &monitor, bed.gpu());
            let (stats, real) = run(&bed);
            prof.flush();
            let bytes = prof.stats().peak_bytes;
            let db = prof.finish(ProfileMeta {
                workload: workload.name().into(),
                framework: engine.tag().into(),
                platform: platform.platform_tag(),
                iterations: u64::from(iterations),
                extra: vec![("profiler".into(), profiler.label().into())],
                ..Default::default()
            });
            MeasuredRun {
                stats,
                real,
                profile_bytes: bytes,
                profile: Some(db),
            }
        }
    }
}

/// Convenience: a full DeepContext profile of a workload (used by the
/// view-regeneration binaries and examples).
pub fn deepcontext_profile(
    platform: &DeviceSpec,
    workload: &dyn Workload,
    opts: &WorkloadOptions,
    engine: EngineKind,
    iterations: u32,
) -> ProfileDb {
    measure(
        platform,
        workload,
        opts,
        engine,
        ProfilerKind::DeepContextNative,
        iterations,
    )
    .profile
    .expect("deepcontext run produces a profile")
}

/// Host memory model for the Figure 6c/6d ratios: the unprofiled
/// process's resident bytes — the framework runtime plus a host-side
/// shadow of the model state (most parameters live on device).
pub fn host_base_bytes(workload: &dyn Workload) -> usize {
    (8 << 20) + (workload.param_bytes() / 16) as usize
}

/// Memory-overhead ratio for Figure 6c/6d. Returns `None` when the
/// profiled process would exceed `dram_budget` (plotted as ∞ in the
/// paper's chart — the out-of-memory cases).
pub fn memory_overhead(
    workload: &dyn Workload,
    profile_bytes: usize,
    dram_budget: usize,
) -> Option<f64> {
    let base = host_base_bytes(workload);
    if base + profile_bytes > dram_budget {
        return None;
    }
    Some((base + profile_bytes) as f64 / base as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_models::DlrmSmall;

    #[test]
    fn measure_runs_every_profiler_kind() {
        let opts = WorkloadOptions::default();
        for kind in [
            ProfilerKind::None,
            ProfilerKind::FrameworkTrace,
            ProfilerKind::DeepContext,
            ProfilerKind::DeepContextNative,
        ] {
            let run = measure(
                &DeviceSpec::a100_sxm(),
                &DlrmSmall,
                &opts,
                EngineKind::Eager,
                kind,
                1,
            );
            assert!(run.stats.kernels > 0, "{kind:?}");
            if kind == ProfilerKind::None {
                assert_eq!(run.profile_bytes, 0);
            } else {
                assert!(run.profile_bytes > 0, "{kind:?}");
            }
            assert_eq!(
                run.profile.is_some(),
                matches!(
                    kind,
                    ProfilerKind::DeepContext | ProfilerKind::DeepContextNative
                )
            );
        }
    }

    #[test]
    fn trace_memory_exceeds_deepcontext_memory_over_iterations() {
        let opts = WorkloadOptions::default();
        let iters = 8;
        let trace = measure(
            &DeviceSpec::a100_sxm(),
            &DlrmSmall,
            &opts,
            EngineKind::Eager,
            ProfilerKind::FrameworkTrace,
            iters,
        );
        let dc = measure(
            &DeviceSpec::a100_sxm(),
            &DlrmSmall,
            &opts,
            EngineKind::Eager,
            ProfilerKind::DeepContext,
            iters,
        );
        assert!(
            trace.profile_bytes > dc.profile_bytes,
            "trace {} !> dc {}",
            trace.profile_bytes,
            dc.profile_bytes
        );
    }

    #[test]
    fn memory_overhead_reports_oom_as_none() {
        assert!(memory_overhead(&DlrmSmall, 1 << 20, 1 << 30).is_some());
        assert!(memory_overhead(&DlrmSmall, 1 << 30, 1 << 24).is_none());
    }

    #[test]
    fn jit_runs_measure_too() {
        let run = measure(
            &DeviceSpec::mi250(),
            &DlrmSmall,
            &WorkloadOptions::default(),
            EngineKind::Jit,
            ProfilerKind::DeepContext,
            2,
        );
        assert!(run.stats.kernels > 0);
        let db = measure(
            &DeviceSpec::mi250(),
            &DlrmSmall,
            &WorkloadOptions::default(),
            EngineKind::Jit,
            ProfilerKind::DeepContextNative,
            1,
        )
        .profile
        .unwrap();
        assert_eq!(db.meta().framework, "jit");
        assert_eq!(db.meta().platform, "amd-mi250");
    }
}
