//! Chrome Trace Format export.
//!
//! Produces the JSON object format consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): one *process* per device, one
//! *thread* per stream — so every `(device, stream)` track renders as
//! its own swim-lane — with each interval emitted as a complete (`"X"`)
//! event. Timestamps and durations are microseconds per the format, at
//! nanosecond precision (fractional values are allowed and preserved).
//! When the caller passes the CCT the snapshot was resolved against,
//! every slice carries its full calling context as an argument, so
//! clicking a kernel in the trace viewer shows the Python → operator →
//! kernel path that launched it.
//!
//! [`to_chrome_trace_with_journal`] additionally merges the run's
//! incident journal into the `profiler (self)` process as instant
//! (`"i"`) events on a dedicated `incidents` lane — supervisor
//! transitions, quarantines and drop storms render as markers right
//! above the flush/fold/worker swim-lanes they explain.

use std::fmt::Write as _;

use deepcontext_core::{
    severity_label, CallingContextTree, FxHashMap, StoredJournal, Sym, TrackKey,
};

use crate::snapshot::TimelineSnapshot;

/// The `tid` of the incident-journal lane inside the `profiler (self)`
/// process — above the reserved self streams (workers count from 0,
/// flush/fold are 1000/1001) so it never collides with an interval
/// track.
const INCIDENT_TID: u32 = 1_002;

/// Human-readable lane name of a self-timeline stream (the profiler's
/// reserved [`TrackKey::SELF_DEVICE`] tracks).
fn self_stream_name(stream: u32) -> String {
    match stream {
        TrackKey::SELF_STREAM_FLUSH => "producer flush".to_string(),
        TrackKey::SELF_STREAM_FOLD => "snapshot fold".to_string(),
        worker => format!("worker {worker}"),
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Nanoseconds rendered as a microsecond JSON number with full
/// nanosecond precision and no float rounding (`1234` → `1.234`).
fn us(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        whole.to_string()
    } else {
        format!("{whole}.{frac:03}")
    }
}

/// Renders `snapshot` as a Chrome Trace Format JSON object (see the
/// [module docs](self)). The result is self-contained: load it directly
/// in `chrome://tracing` or Perfetto.
pub fn to_chrome_trace(snapshot: &TimelineSnapshot, cct: Option<&CallingContextTree>) -> String {
    to_chrome_trace_with_journal(snapshot, cct, None)
}

/// [`to_chrome_trace`] plus the incident journal: each journaled event
/// becomes a process-scoped instant (`"ph":"i"`, `"s":"p"`) on the
/// `incidents` lane of the `profiler (self)` process, named by its site
/// and carrying its severity, sequence number and key/value fields as
/// arguments. The self process is emitted even when the snapshot holds
/// no self intervals (telemetry off, journal on), so the markers always
/// have a named home.
pub fn to_chrome_trace_with_journal(
    snapshot: &TimelineSnapshot,
    cct: Option<&CallingContextTree>,
    journal: Option<&StoredJournal>,
) -> String {
    let journal = journal.filter(|j| !j.is_empty());
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |event: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&event);
    };

    // Metadata: name one process per device, one thread per stream, and
    // keep lanes in stream order. The reserved self-telemetry device
    // renders as the profiler's own process (it sorts last — after every
    // real GPU — because it is `u32::MAX`); a journal forces it into
    // existence even without self intervals.
    let mut devices = snapshot.devices();
    if journal.is_some() && !devices.contains(&TrackKey::SELF_DEVICE) {
        devices.push(TrackKey::SELF_DEVICE);
    }
    for device in devices {
        let name = if device == TrackKey::SELF_DEVICE {
            "profiler (self)".to_string()
        } else {
            format!("GPU {device}")
        };
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{device},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut out,
        );
    }
    for track in snapshot.tracks() {
        let key = track.key();
        let lane = if key.is_self() {
            self_stream_name(key.stream)
        } else {
            format!("stream {}", key.stream)
        };
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{lane}\"}}}}",
                key.device, key.stream
            ),
            &mut out,
        );
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{}}}}}",
                key.device, key.stream, key.stream
            ),
            &mut out,
        );
    }

    // One complete event per interval, in track order (already
    // start-sorted within each track). Interval names are interned
    // `Sym`s: each distinct symbol is resolved and escaped once —
    // against the snapshot's captured symbol table first, the CCT's
    // interner as fallback, `sym#N` as the last resort — and every
    // further interval carrying it reuses the memoized escape.
    let interner = cct.map(|c| c.interner());
    let mut escaped_names: FxHashMap<Sym, String> = FxHashMap::default();
    for track in snapshot.tracks() {
        let key = track.key();
        for interval in track.intervals() {
            let name = escaped_names.entry(interval.name).or_insert_with(|| {
                let mut escaped = String::new();
                match (snapshot.name_of(interval.name), &interner) {
                    (Some(name), _) => escape_into(&mut escaped, name),
                    (None, Some(interner)) if (interval.name.index() as usize) < interner.len() => {
                        escape_into(&mut escaped, &interner.resolve(interval.name));
                    }
                    _ => {
                        let _ = write!(escaped, "{}", interval.name);
                    }
                }
                escaped
            });
            let mut event = String::new();
            event.push_str("{\"ph\":\"X\",\"pid\":");
            let _ = write!(event, "{}", key.device);
            event.push_str(",\"tid\":");
            let _ = write!(event, "{}", key.stream);
            event.push_str(",\"name\":\"");
            event.push_str(name);
            event.push_str("\",\"cat\":\"");
            event.push_str(interval.kind.name());
            event.push_str("\",\"ts\":");
            event.push_str(&us(interval.start.as_nanos()));
            event.push_str(",\"dur\":");
            event.push_str(&us(interval.duration().as_nanos()));
            event.push_str(",\"args\":{\"correlation\":");
            let _ = write!(event, "{}", interval.correlation);
            if let (Some(cct), Some(interner), Some(node)) =
                (cct, interner.as_ref(), interval.context)
            {
                if node.index() < cct.node_count() {
                    let path = cct
                        .frames_to_root(node)
                        .frames()
                        .iter()
                        .map(|f| f.label(interner))
                        .collect::<Vec<_>>()
                        .join(" > ");
                    event.push_str(",\"context\":\"");
                    escape_into(&mut event, &path);
                    event.push('"');
                }
            }
            event.push_str("}}");
            push(event, &mut out);
        }
    }

    // Incident markers: one instant per journaled event, in seq order,
    // on their own named lane of the self process.
    if let Some(journal) = journal {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{INCIDENT_TID},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"incidents\"}}}}",
                TrackKey::SELF_DEVICE
            ),
            &mut out,
        );
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{INCIDENT_TID},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{INCIDENT_TID}}}}}",
                TrackKey::SELF_DEVICE
            ),
            &mut out,
        );
        for record in &journal.events {
            let mut event = String::new();
            event.push_str("{\"ph\":\"i\",\"pid\":");
            let _ = write!(event, "{}", TrackKey::SELF_DEVICE);
            event.push_str(",\"tid\":");
            let _ = write!(event, "{INCIDENT_TID}");
            event.push_str(",\"name\":\"");
            escape_into(&mut event, journal.site_name(record).unwrap_or("<unknown>"));
            event.push_str("\",\"cat\":\"incident\",\"s\":\"p\",\"ts\":");
            event.push_str(&us(record.ts_ns));
            event.push_str(",\"args\":{\"seq\":");
            let _ = write!(event, "{}", record.seq);
            event.push_str(",\"severity\":\"");
            event.push_str(severity_label(record.severity));
            event.push('"');
            for (key, value) in &record.fields {
                event.push_str(",\"");
                escape_into(&mut event, key);
                event.push_str("\":\"");
                escape_into(&mut event, value);
                event.push('"');
            }
            event.push_str("}}");
            push(event, &mut out);
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::TimelineCounters;
    use deepcontext_core::{Interner, Interval, IntervalKind, TimeNs, TrackKey};

    #[test]
    fn escapes_and_fractional_microseconds() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
        assert_eq!(us(0), "0");
        assert_eq!(us(1_500), "1.500");
        assert_eq!(us(42), "0.042");
        assert_eq!(us(2_000), "2");
    }

    fn memcpy_snapshot() -> (std::sync::Arc<Interner>, TimelineSnapshot) {
        let interner = Interner::new();
        let snapshot = TimelineSnapshot::from_intervals(
            vec![Interval {
                track: TrackKey {
                    device: 1,
                    stream: 3,
                },
                start: TimeNs(1_000),
                end: TimeNs(3_500),
                kind: IntervalKind::Memcpy,
                name: interner.intern("memcpy"),
                correlation: 9,
                context: None,
            }],
            TimelineCounters {
                recorded: 1,
                dropped: 0,
            },
        );
        (interner, snapshot)
    }

    #[test]
    fn trace_contains_metadata_and_slices() {
        let (interner, snapshot) = memcpy_snapshot();
        let snapshot = snapshot.with_names(interner.snapshot());
        let json = to_chrome_trace(&snapshot, None);
        assert!(json.contains("\"name\":\"GPU 1\""));
        assert!(json.contains("\"name\":\"stream 3\""));
        assert!(json.contains("\"name\":\"memcpy\""));
        assert!(json.contains("\"cat\":\"memcpy\""));
        assert!(json.contains("\"ts\":1,\"dur\":2.500"));
        assert!(json.contains("\"correlation\":9"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn journal_events_render_as_self_process_instants() {
        use deepcontext_core::{StoredJournal, StoredJournalEvent};
        let journal = StoredJournal {
            events: vec![
                StoredJournalEvent {
                    seq: 1,
                    ts_ns: 1_500,
                    severity: 1,
                    site: 0,
                    fields: vec![
                        ("from".into(), "Healthy".into()),
                        ("to".into(), "Degraded".into()),
                    ],
                },
                StoredJournalEvent {
                    seq: 2,
                    ts_ns: 2_000,
                    severity: 2,
                    site: 1,
                    fields: vec![("shard".into(), "3".into())],
                },
            ],
            names: vec![
                std::sync::Arc::from("supervisor.transition"),
                std::sync::Arc::from("shard.quarantine"),
            ],
            recorded: 2,
            evicted: 0,
        };

        // No self intervals in the snapshot: the journal alone must
        // force the self process + incidents lane into existence.
        let (interner, snapshot) = memcpy_snapshot();
        let snapshot = snapshot.with_names(interner.snapshot());
        let json = to_chrome_trace_with_journal(&snapshot, None, Some(&journal));
        assert!(json.contains("\"name\":\"profiler (self)\""));
        assert!(json.contains("\"name\":\"incidents\""));
        assert!(json.contains(
            "\"ph\":\"i\",\"pid\":4294967295,\"tid\":1002,\"name\":\"supervisor.transition\""
        ));
        assert!(json.contains("\"s\":\"p\",\"ts\":1.500"));
        assert!(json.contains("\"severity\":\"warn\",\"from\":\"Healthy\",\"to\":\"Degraded\""));
        assert!(json.contains("\"name\":\"shard.quarantine\""));
        assert!(json.contains("\"severity\":\"error\",\"shard\":\"3\""));
        // The workload slice is still there, and the JSON stays balanced.
        assert!(json.contains("\"name\":\"memcpy\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        // An empty journal adds nothing — the export equals the plain one.
        let empty = StoredJournal::default();
        assert_eq!(
            to_chrome_trace_with_journal(&snapshot, None, Some(&empty)),
            to_chrome_trace(&snapshot, None)
        );
    }

    #[test]
    fn unresolvable_names_render_as_symbol_ids() {
        // No names table and no CCT: the trace stays valid, the name
        // falls back to the symbol's display form.
        let (_interner, snapshot) = memcpy_snapshot();
        let json = to_chrome_trace(&snapshot, None);
        assert!(json.contains("\"name\":\"sym#0\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
