//! Reproduces the §6.5 cross-platform comparison (paper Figure 10):
//! profile U-Net on both Table 2 platforms and export flame graphs. The
//! Nvidia hotspot is `aten::conv2d`; on the MI250 the shared 512-thread
//! norm template makes `aten::instance_norm` the abnormal hotspot.
//!
//! Writes `artifacts/flame_nvidia.svg` and `artifacts/flame_amd.svg`
//! under the working directory (the `artifacts/` convention keeps
//! generated renderings out of the repo root).
//!
//! ```text
//! cargo run --release --example amd_vs_nvidia
//! ```

use deepcontext::prelude::*;
use deepcontext_flamegraph::{AsciiOptions, SvgOptions};

fn profile_unet(spec: DeviceSpec) -> Result<ProfileDb, Box<dyn std::error::Error>> {
    let platform = spec.platform_tag();
    let bed = TestBed::new(spec);
    let monitor = DlMonitor::init(bed.env(), Interner::new());
    monitor.attach_framework(bed.eager().core().callbacks());
    monitor.attach_gpu(bed.gpu());
    let profiler = Profiler::attach(
        ProfilerConfig::deepcontext_native(),
        bed.env(),
        &monitor,
        bed.gpu(),
    );
    bed.run_eager(&UNet, &WorkloadOptions::default(), 2)?;
    Ok(profiler.finish(ProfileMeta {
        workload: "unet".into(),
        framework: "eager".into(),
        platform,
        iterations: 2,
        ..Default::default()
    }))
}

fn top_operator(db: &ProfileDb) -> (String, f64) {
    let cct = db.cct();
    let interner = cct.interner();
    let mut best = (String::new(), 0.0);
    for node in cct.nodes_of_kind(FrameKind::Operator) {
        let frame = cct.node(node).frame();
        if let deepcontext::core::Frame::Operator { phase, .. } = frame {
            if *phase != OpPhase::Forward {
                continue;
            }
        }
        let t = cct.node(node).metrics().sum(MetricKind::GpuTime);
        if t > best.1 {
            best = (frame.short_label(&interner), t);
        }
    }
    best
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for spec in [DeviceSpec::a100_sxm(), DeviceSpec::mi250()] {
        let tag = spec.platform_tag();
        let db = profile_unet(spec)?;
        let (op, time) = top_operator(&db);
        println!(
            "{tag}: hotspot operator = {op} ({:.1}% of GPU time)",
            time / db.cct().total(MetricKind::GpuTime) * 100.0
        );

        let mut flame = FlameGraph::bottom_up(db.cct(), MetricKind::GpuTime);
        flame.highlight_hotspots(0.15);
        println!(
            "{}",
            flame.to_ascii(&AsciiOptions {
                min_share: 0.04,
                max_depth: 2,
                ..Default::default()
            })
        );
        std::fs::create_dir_all("artifacts")?;
        let svg_path = format!(
            "artifacts/flame_{}.svg",
            tag.split('-').next().unwrap_or("gpu")
        );
        std::fs::write(&svg_path, flame.to_svg(&SvgOptions::default()))?;
        println!("wrote {svg_path}\n");
    }
    Ok(())
}
