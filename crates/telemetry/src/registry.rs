//! The lock-striped metrics registry and the [`Telemetry`] handle.
//!
//! Registration (name + label set → `Arc` handle) goes through a small
//! striped map and takes a lock; instrumented code does it **once**, at
//! construction time, and holds the returned `Arc<Counter>` /
//! `Arc<Gauge>` / `Arc<Histogram>` for the run. The hot paths then
//! touch only the atomics inside those handles — the registry's locks
//! never appear on a per-event path. Snapshots walk the stripes and
//! copy every metric into a sorted, immutable [`TelemetrySnapshot`].

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

const STRIPES: usize = 8;

/// FNV-1a over the metric name selects the stripe: stable, cheap, and
/// registration-time only.
fn stripe_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    (h as usize) % STRIPES
}

#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Clone)]
enum MetricHandle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The striped name → metric map. Usually reached through
/// [`Telemetry`], which adds the shared epoch clock.
#[derive(Debug)]
pub struct Registry {
    stripes: Vec<Mutex<HashMap<MetricKey, MetricHandle>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricHandle,
    ) -> MetricHandle {
        let key = MetricKey::new(name, labels);
        let mut stripe = self.stripes[stripe_of(name)].lock();
        stripe.entry(key).or_insert_with(make).clone()
    }

    /// Gets or registers the counter `name{labels}`.
    ///
    /// # Panics
    /// If the same name + label set was already registered as a
    /// different metric kind (an instrumentation bug).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, labels, || {
            MetricHandle::Counter(Arc::new(Counter::default()))
        }) {
            MetricHandle::Counter(c) => c,
            _ => panic!("telemetry metric {name:?} already registered with a different kind"),
        }
    }

    /// Gets or registers the gauge `name{labels}` (panics on a kind
    /// mismatch, like [`counter`](Self::counter)).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, labels, || {
            MetricHandle::Gauge(Arc::new(Gauge::default()))
        }) {
            MetricHandle::Gauge(g) => g,
            _ => panic!("telemetry metric {name:?} already registered with a different kind"),
        }
    }

    /// Gets or registers the histogram `name{labels}` (panics on a kind
    /// mismatch, like [`counter`](Self::counter)).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.register(name, labels, || {
            MetricHandle::Histogram(Arc::new(Histogram::default()))
        }) {
            MetricHandle::Histogram(h) => h,
            _ => panic!("telemetry metric {name:?} already registered with a different kind"),
        }
    }

    /// Copies every registered metric into a sorted snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut samples = Vec::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock();
            for (key, handle) in stripe.iter() {
                let value = match handle {
                    MetricHandle::Counter(c) => MetricValue::Counter(c.get()),
                    MetricHandle::Gauge(g) => MetricValue::Gauge(g.get()),
                    MetricHandle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                samples.push(MetricSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    value,
                });
            }
        }
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        TelemetrySnapshot { samples }
    }
}

/// One metric's point-in-time value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge reading.
    Gauge(u64),
    /// A histogram distribution.
    Histogram(HistogramSnapshot),
}

/// One registered metric at snapshot time: name, sorted labels, value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// The metric name (see [`names`](crate::names) for the well-known
    /// set).
    pub name: String,
    /// Label pairs, sorted by key at registration time.
    pub labels: Vec<(String, String)>,
    /// The value observed at snapshot time.
    pub value: MetricValue,
}

/// An immutable, name-sorted copy of every metric in a registry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// All samples, sorted by `(name, labels)` — the deterministic order
    /// the exporters rely on.
    pub samples: Vec<MetricSample>,
}

impl TelemetrySnapshot {
    /// Whether no metric was registered.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of every counter sample named `name` across its label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Maximum gauge reading named `name` across its label sets (zero
    /// when absent).
    pub fn gauge_max(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                MetricValue::Gauge(v) => Some(*v),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// All histogram samples named `name` merged into one distribution
    /// (empty when absent).
    pub fn histogram_merged(&self, name: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for s in self.samples.iter().filter(|s| s.name == name) {
            if let MetricValue::Histogram(h) = &s.value {
                merged.merge(h);
            }
        }
        merged
    }

    /// Renders the snapshot in Prometheus text exposition format (see
    /// [`export`](crate::export)).
    pub fn to_prometheus(&self) -> String {
        crate::export::to_prometheus(self)
    }

    /// Renders the snapshot as a JSON object (see
    /// [`export`](crate::export)).
    pub fn to_json(&self) -> String {
        crate::export::to_json(self)
    }
}

#[derive(Debug)]
struct TelemetryInner {
    registry: Registry,
    epoch: Instant,
}

/// The cheap-to-clone handle instrumented subsystems hold: a shared
/// [`Registry`] plus the epoch all self-time measurements are relative
/// to. Constructed once per profiler session (when telemetry is
/// enabled); disabled telemetry is the *absence* of a `Telemetry` — an
/// `Option<Telemetry>` branch is the entire disabled-path cost.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh registry with its epoch set to now.
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Arc::new(TelemetryInner {
                registry: Registry::new(),
                epoch: Instant::now(),
            }),
        }
    }

    /// Builds a handle from a config: `Some` when enabled, `None`
    /// otherwise — callers store the `Option` and branch on it.
    pub fn from_config(config: &crate::TelemetryConfig) -> Option<Telemetry> {
        config.enabled.then(Telemetry::new)
    }

    /// Nanoseconds since this telemetry session's epoch — the time
    /// domain of every self-recorded latency and self-timeline interval.
    /// (Wall-clock, deliberately distinct from the workload's virtual
    /// clock: self-intervals land on a reserved track, not interleaved
    /// with workload tracks.)
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Gets or registers a counter (see [`Registry::counter`]).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.inner.registry.counter(name, labels)
    }

    /// Gets or registers a gauge (see [`Registry::gauge`]).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.inner.registry.gauge(name, labels)
    }

    /// Gets or registers a histogram (see [`Registry::histogram`]).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.inner.registry.histogram(name, labels)
    }

    /// Copies every registered metric into a sorted snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.inner.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let t = Telemetry::new();
        let a = t.counter("x_total", &[("shard", "0")]);
        let b = t.counter("x_total", &[("shard", "0")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // A different label set is a different series.
        let c = t.counter("x_total", &[("shard", "1")]);
        c.add(5);
        let snap = t.snapshot();
        assert_eq!(snap.counter_total("x_total"), 7);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let t = Telemetry::new();
        let a = t.gauge("g", &[("a", "1"), ("b", "2")]);
        let b = t.gauge("g", &[("b", "2"), ("a", "1")]);
        a.set(9);
        assert_eq!(b.get(), 9);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let t = Telemetry::new();
        let _c = t.counter("m", &[]);
        let _g = t.gauge("m", &[]);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let t = Telemetry::new();
        t.histogram("zz_hist", &[]).record(100);
        t.histogram("zz_hist", &[("shard", "1")]).record(50);
        t.counter("aa_total", &[]).add(3);
        t.gauge("mm_gauge", &[("w", "0")]).record_max(17);
        let snap = t.snapshot();
        let names: Vec<&str> = snap.samples.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(snap.counter_total("aa_total"), 3);
        assert_eq!(snap.gauge_max("mm_gauge"), 17);
        let merged = snap.histogram_merged("zz_hist");
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum, 150);
        assert_eq!(snap.counter_total("absent"), 0);
        assert!(snap.histogram_merged("absent").is_empty());
    }

    #[test]
    fn now_ns_is_monotonic() {
        let t = Telemetry::new();
        let a = t.now_ns();
        let b = t.now_ns();
        assert!(b >= a);
    }
}
