//! The call-path integration algorithm (paper §4.1, "Call Path
//! Integration").
//!
//! DLMonitor "integrates these three call paths into a single
//! comprehensive call path. It traverses the native call path in a
//! bottom-up direction, matching the address of each frame with the
//! recorded addresses of deep learning operators. If a match is found,
//! DLMonitor inserts the operator name under the caller frame. If a
//! frame's address falls within the libpython.so address space, all
//! frames above it are replaced with the Python call path."
//!
//! This module implements that merge as a pure function over snapshots,
//! so it can be tested exhaustively without a live runtime.

use std::sync::Arc;

use deepcontext_core::{CallPath, Frame, Interner, OpPhase};
use sim_runtime::{NativeFrameInfo, PyFrameInfo};

/// One shadow-stack operator, as captured at operator entry.
#[derive(Debug, Clone)]
pub struct ShadowOp {
    /// Canonical operator name.
    pub name: Arc<str>,
    /// Forward or backward.
    pub phase: OpPhase,
    /// Autograd sequence id, if taped.
    pub seq_id: Option<u64>,
    /// Native stack depth when the operator was entered — the "memory
    /// location" marker used to place the operator among native frames.
    pub native_depth: usize,
    /// Python call path cached at entry (the caching optimisation).
    pub cached_python: Vec<PyFrameInfo>,
}

/// Snapshots consumed by the integrator.
#[derive(Debug, Clone, Default)]
pub struct IntegrationInput {
    /// Python frames, root-first (empty when the source is disabled or
    /// the thread has no interpreter stack).
    pub python: Vec<PyFrameInfo>,
    /// Shadow operators, outermost first.
    pub operators: Vec<ShadowOp>,
    /// Native frames, root-first (empty when native collection is off).
    pub native: Vec<NativeFrameInfo>,
    /// Whether each native frame's PC lies in libpython (parallel to
    /// `native`; computed by the caller via the library map).
    pub native_is_python: Vec<bool>,
}

/// Merges the three per-thread call-path sources into one unified path.
///
/// The output is root-first: Python frames, then operators interleaved
/// with the native frames below them, by the recorded native depths.
pub fn integrate_call_path(input: &IntegrationInput, interner: &Interner) -> CallPath {
    let mut path = CallPath::new();

    // Python replaces everything at and above (toward the root) the
    // deepest libpython frame.
    let cutover = input
        .native_is_python
        .iter()
        .rposition(|is_py| *is_py)
        .map(|idx| idx + 1);

    for f in &input.python {
        path.push(Frame::python(&f.file, f.line, &f.function, interner));
    }

    let tail_start = match cutover {
        Some(idx) => idx,
        None if input.native.is_empty() => 0,
        // No libpython frame on this stack (e.g. a backward thread):
        // keep the whole native path.
        None => 0,
    };

    let mut ops = input.operators.iter().peekable();
    for (idx, frame) in input.native.iter().enumerate().skip(tail_start) {
        while ops.peek().map(|op| op.native_depth <= idx).unwrap_or(false) {
            let op = ops.next().expect("peeked");
            path.push(Frame::operator_with(
                &op.name, op.phase, op.seq_id, interner,
            ));
        }
        path.push(Frame::native(
            &frame.library,
            frame.pc,
            &frame.symbol,
            interner,
        ));
    }
    // Operators with no native frames below them (native collection off,
    // or the operator entered and no deeper native frame captured yet).
    for op in ops {
        path.push(Frame::operator_with(
            &op.name, op.phase, op.seq_id, interner,
        ));
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::FrameKind;

    fn py(file: &str, line: u32, f: &str) -> PyFrameInfo {
        PyFrameInfo::new(file, line, f)
    }

    fn native(lib: &str, pc: u64, sym: &str) -> NativeFrameInfo {
        NativeFrameInfo::new(lib, pc, sym)
    }

    fn op(name: &str, depth: usize) -> ShadowOp {
        ShadowOp {
            name: Arc::from(name),
            phase: OpPhase::Forward,
            seq_id: None,
            native_depth: depth,
            cached_python: Vec::new(),
        }
    }

    fn kinds(path: &CallPath) -> Vec<FrameKind> {
        path.frames().iter().map(|f| f.kind()).collect()
    }

    #[test]
    fn python_replaces_frames_at_and_above_libpython() {
        let interner = Interner::new();
        let input = IntegrationInput {
            python: vec![py("train.py", 3, "main"), py("model.py", 9, "forward")],
            operators: vec![op("aten::conv2d", 3)],
            native: vec![
                native("libc.so", 0x1, "__libc_start_main"),
                native("libpython3.11.so", 0x2, "_PyEval_EvalFrameDefault"),
                native("libpython3.11.so", 0x3, "_PyEval_EvalFrameDefault"),
                native("libtorch_cpu.so", 0x4, "c10::Dispatcher::call"),
                native("libtorch_cpu.so", 0x5, "at::native::conv2d"),
            ],
            native_is_python: vec![false, true, true, false, false],
        };
        let path = integrate_call_path(&input, &interner);
        let labels: Vec<_> = path
            .frames()
            .iter()
            .map(|f| f.short_label(&interner))
            .collect();
        assert_eq!(
            labels,
            vec![
                "train.py:3",
                "model.py:9",
                "aten::conv2d",
                "c10::Dispatcher::call",
                "at::native::conv2d"
            ]
        );
        assert_eq!(
            kinds(&path),
            vec![
                FrameKind::Python,
                FrameKind::Python,
                FrameKind::Operator,
                FrameKind::Native,
                FrameKind::Native
            ]
        );
    }

    #[test]
    fn without_libpython_native_path_is_kept_whole() {
        // A backward thread: no Python frames anywhere.
        let interner = Interner::new();
        let input = IntegrationInput {
            python: vec![],
            operators: vec![ShadowOp {
                name: Arc::from("aten::index"),
                phase: OpPhase::Backward,
                seq_id: Some(7),
                native_depth: 1,
                cached_python: vec![],
            }],
            native: vec![
                native(
                    "libtorch_cpu.so",
                    0x10,
                    "torch::autograd::Engine::thread_main",
                ),
                native("libtorch_cpu.so", 0x11, "c10::Dispatcher::call"),
            ],
            native_is_python: vec![false, false],
        };
        let path = integrate_call_path(&input, &interner);
        let labels: Vec<_> = path
            .frames()
            .iter()
            .map(|f| f.short_label(&interner))
            .collect();
        assert_eq!(
            labels,
            vec![
                "torch::autograd::Engine::thread_main",
                "aten::index~bwd",
                "c10::Dispatcher::call"
            ]
        );
    }

    #[test]
    fn nested_operators_interleave_by_depth() {
        let interner = Interner::new();
        let input = IntegrationInput {
            python: vec![py("m.py", 1, "f")],
            operators: vec![op("aten::linear", 1), op("aten::matmul", 2)],
            native: vec![
                native("libpython3.11.so", 0x1, "_PyEval_EvalFrameDefault"),
                native("libtorch_cpu.so", 0x2, "at::native::linear"),
                native("libtorch_cpu.so", 0x3, "at::native::matmul"),
            ],
            native_is_python: vec![true, false, false],
        };
        let path = integrate_call_path(&input, &interner);
        let labels: Vec<_> = path
            .frames()
            .iter()
            .map(|f| f.short_label(&interner))
            .collect();
        assert_eq!(
            labels,
            vec![
                "m.py:1",
                "aten::linear",
                "at::native::linear",
                "aten::matmul",
                "at::native::matmul"
            ]
        );
    }

    #[test]
    fn native_source_disabled_appends_operators_after_python() {
        let interner = Interner::new();
        let input = IntegrationInput {
            python: vec![py("m.py", 1, "f")],
            operators: vec![op("aten::relu", 5)],
            native: vec![],
            native_is_python: vec![],
        };
        let path = integrate_call_path(&input, &interner);
        assert_eq!(kinds(&path), vec![FrameKind::Python, FrameKind::Operator]);
    }

    #[test]
    fn empty_input_yields_empty_path() {
        let interner = Interner::new();
        let path = integrate_call_path(&IntegrationInput::default(), &interner);
        assert!(path.is_empty());
    }
}
