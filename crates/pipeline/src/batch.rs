//! Thread-local producer-side event batching.
//!
//! PR 3's asynchronous pipeline made *attribution* cheap for producers,
//! but left a fixed per-launch cost on the monitored workload's critical
//! path: one correlation-directory bind, one bounded-channel push, one
//! waiter check per event. On coarse kernel-only streams — where
//! attribution itself is cheap — those fixed costs dominate. This module
//! amortizes them: producers append events to a per-thread, per-shard
//! [`LaunchBatch`] buffer, and a whole buffer is flushed at once —
//! binding every batched correlation in **one** striped-directory pass
//! ([`ShardedSink::bind_batch`]) and handing each shard's run to the
//! sink in **one** delivery (one bounded-channel batch push in
//! asynchronous mode, one shard-lock acquisition in synchronous mode).
//!
//! # Flush points
//!
//! A thread's buffer is flushed when:
//!
//! * it reaches [`PipelineConfig::launch_batch`] events (the capacity
//!   trigger, tuned by `bench_pipeline` and overridable via the
//!   `DEEPCONTEXT_LAUNCH_BATCH` environment variable);
//! * **any** activity batch is delivered — activity records resolve
//!   through launches' correlations, so every buffered launch anywhere
//!   must be bound and delivered before a record routes
//!   ([`Batcher::flush_all`] walks every thread's buffer, not just the
//!   caller's);
//! * an explicit barrier runs (flush / snapshot / finish / epoch /
//!   counters) — so batched and unbatched profiles are indistinguishable
//!   at every observation point;
//! * the owning thread exits (thread quiesce: the thread-local
//!   registration's destructor flushes the remainder).
//!
//! One timing subtlety of the thread-quiesce path: TLS destructors run
//! *after* `std::thread::scope`'s implicit join returns, so a
//! scope-joined producer's tail batch may land a beat after the scope
//! body — any barrier still collects it, but tests (or embedders)
//! asserting quiesce *timing* must join producers with an explicit
//! `JoinHandle::join` rather than rely on scope exit.
//!
//! # Ordering
//!
//! Only the per-event collection paths (launches, CPU samples) are
//! buffered; activity buckets arrive pre-batched from the GPU runtime
//! and are delivered eagerly, right after the global flush that
//! guarantees every launch they resolve through is already bound and
//! ahead of them. Within one buffer, events keep arrival order per
//! shard, so flushing preserves the per-shard event order the unbatched
//! pipeline would have applied inline — the batched == unbatched
//! equivalence the proptests assert — and the correlation two-phase
//! prune runs at exactly the unbatched cadence (no extra live-state
//! window, so peak profile memory is unchanged).
//!
//! [`PipelineConfig::launch_batch`]: crate::PipelineConfig::launch_batch

use std::cell::RefCell;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use deepcontext_core::{CallPath, CallingContextTree, MetricKind, TrackKey};
use dlmonitor::EventOrigin;
use sim_gpu::{Activity, ApiKind};

use crate::sharded::ShardedSink;
use crate::sink::{EventSink, SinkCounters};

/// One producer-side event held in a [`LaunchBatch`] buffer, already
/// routed to its home shard. Only the *per-event* collection paths —
/// launches and CPU samples, where fixed costs dominate — are buffered;
/// activity buckets arrive pre-batched from the GPU runtime and are
/// delivered eagerly (after a global flush), so the correlation
/// lifecycle keeps exactly the unbatched prune cadence.
pub(crate) enum ProducerEvent {
    /// A GPU API interception at its launch site.
    Launch {
        /// Routing identity; its correlation is directory-bound by the
        /// flush's `bind_batch` pass, not per event.
        origin: EventOrigin,
        /// The unified call path bound at the launch site.
        path: CallPath,
        /// Which API was intercepted.
        api: ApiKind,
    },
    /// A CPU sample on the buffering thread.
    Sample {
        /// The sampled thread's unified call path.
        path: CallPath,
        /// Metric attributed by the sample.
        metric: MetricKind,
        /// Sampled value.
        value: f64,
    },
}

/// Where a flushed batch goes: the asynchronous sink enqueues it as one
/// bounded-channel message run, the synchronous wrapper applies it under
/// one shard-lock acquisition.
pub(crate) trait BatchDelivery: Send + Sync {
    /// The sharded sink owning the routing directory flushes bind into.
    fn sharded(&self) -> &ShardedSink;

    /// Delivers one shard's flushed events in buffer order. The flush has
    /// already directory-bound every launch correlation in the batch.
    fn deliver(&self, shard: usize, events: Vec<ProducerEvent>);
}

/// One thread's pending events, bucketed per shard.
pub(crate) struct LaunchBatch {
    shards: Vec<Vec<ProducerEvent>>,
    /// Shard indices with a non-empty bucket, in first-touch order —
    /// a flush walks only these instead of scanning every bucket, so
    /// single-stream producers (one occupied bucket) pay O(1) per flush
    /// even under a many-hundred-shard layout (the ROADMAP's "batcher
    /// flush fan-out" item).
    occupied: Vec<u32>,
    /// Total buffered event weight across all shards.
    pending: u64,
}

impl LaunchBatch {
    fn new(shards: usize) -> Self {
        LaunchBatch {
            shards: (0..shards).map(|_| Vec::new()).collect(),
            occupied: Vec::new(),
            pending: 0,
        }
    }

    /// Appends one routed event to its shard bucket, tracking bucket
    /// occupancy for O(occupied) flushes.
    fn push(&mut self, shard: usize, event: ProducerEvent) {
        let bucket = &mut self.shards[shard];
        if bucket.is_empty() {
            self.occupied.push(shard as u32);
        }
        bucket.push(event);
        self.pending += 1;
    }

    /// Flushes every occupied shard bucket into `delivery`, binding each
    /// bucket's launch correlations in one striped-directory pass first.
    /// Returns the flushed event count.
    fn flush(&mut self, delivery: &dyn BatchDelivery) -> u64 {
        if self.pending == 0 {
            return 0;
        }
        let flushed = self.pending;
        let sharded = delivery.sharded();
        let flush_start = sharded.telemetry().map(|t| t.now_ns());
        let mut corrs: Vec<u64> = Vec::new();
        for &idx in &self.occupied {
            let bucket = &mut self.shards[idx as usize];
            // Hand the filled bucket over but leave equivalent capacity
            // behind: one allocation per flush window instead of a
            // geometric regrowth (and its memcpys) on every refill.
            let events = std::mem::replace(bucket, Vec::with_capacity(bucket.len()));
            corrs.clear();
            corrs.extend(events.iter().filter_map(|e| match e {
                ProducerEvent::Launch { origin, .. } => origin.correlation.map(|c| c.0),
                ProducerEvent::Sample { .. } => None,
            }));
            // Publish the whole batch's routes before any of it becomes
            // visible, so activity records arriving while the batch is in
            // flight route to the same shard (the batched analogue of the
            // unbatched pipeline's enqueue-time `bind_route`).
            delivery.sharded().bind_batch(&corrs, idx as usize);
            delivery.deliver(idx as usize, events);
        }
        self.occupied.clear();
        self.pending = 0;
        if let (Some(t), Some(start)) = (sharded.telemetry(), flush_start) {
            // In async mode `deliver` enqueues (and may block on
            // backpressure), so flush latency is the producer-visible
            // cost of handing the batch off — exactly the number the
            // overhead bars care about.
            let end = t.now_ns();
            t.flush_size.record(flushed);
            t.flush_latency.record(end.saturating_sub(start));
            sharded.record_self_interval(TrackKey::SELF_STREAM_FLUSH, start, end, t.flush_sym);
        }
        flushed
    }

    /// Approximate resident bytes of the buffered events.
    fn approx_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<ProducerEvent>())
            .sum::<usize>()
            + self.occupied.capacity() * std::mem::size_of::<u32>()
            + self.pending as usize * 64
    }
}

/// One thread's registered buffer: the owning thread appends under the
/// mutex (uncontended in steady state); barrier threads lock it to flush
/// on the thread's behalf.
struct Slot {
    buf: Mutex<LaunchBatch>,
    /// Back-reference for the thread-quiesce flush; weak so a dead sink
    /// cannot be kept alive (or resurrected) by idle thread-locals.
    delivery: Weak<dyn BatchDelivery>,
    /// The owning [`Batcher`]'s buffered-event total, decremented by
    /// whoever flushes this slot.
    pending_total: Arc<AtomicU64>,
}

/// The thread-local handle to a [`Slot`]; dropping it (thread exit)
/// flushes whatever the dying thread still buffers.
struct LocalSlot(Arc<Slot>);

impl Drop for LocalSlot {
    fn drop(&mut self) {
        if let Some(delivery) = self.0.delivery.upgrade() {
            let flushed = self.0.buf.lock().flush(delivery.as_ref());
            self.0.pending_total.fetch_sub(flushed, Ordering::AcqRel);
        }
    }
}

thread_local! {
    /// This thread's slots, one per live batching sink the thread has
    /// produced into, most-recently-used first. A short vector beats a
    /// hash map here: the common workload produces into one sink, so the
    /// per-event lookup is a single id compare at index 0.
    static LOCAL_SLOTS: RefCell<Vec<(u64, LocalSlot)>> = const { RefCell::new(Vec::new()) };
}

/// Unique id per [`Batcher`] instance, keying the thread-local registry.
static NEXT_BATCHER_ID: AtomicU64 = AtomicU64::new(1);

/// The producer-side batching engine shared by both ingestion modes: a
/// registry of per-thread [`LaunchBatch`] buffers plus the flush policy.
pub(crate) struct Batcher {
    id: u64,
    /// Flush threshold in events; `push` flushes the whole thread buffer
    /// once this many events are pending.
    capacity: u64,
    shard_count: usize,
    delivery: Arc<dyn BatchDelivery>,
    /// Every live slot, so barriers can flush threads they do not own.
    slots: Mutex<Vec<Arc<Slot>>>,
    /// Events buffered across **all** slots right now, so the empty case
    /// of [`flush_all`](Self::flush_all) — every activity delivery runs
    /// one — is one atomic load instead of a registry sweep.
    pending_total: Arc<AtomicU64>,
}

impl Batcher {
    pub(crate) fn new(delivery: Arc<dyn BatchDelivery>, launch_batch: usize) -> Self {
        let shard_count = delivery.sharded().shard_count();
        Batcher {
            id: NEXT_BATCHER_ID.fetch_add(1, Ordering::Relaxed),
            capacity: launch_batch.max(1) as u64,
            shard_count,
            delivery,
            slots: Mutex::new(Vec::new()),
            pending_total: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Registers a fresh slot for the calling thread (and prunes dead
    /// sinks' local entries while at it — registration is rare).
    fn register_slot(&self, slots: &mut Vec<(u64, LocalSlot)>) {
        slots.retain(|(_, s)| s.0.delivery.strong_count() > 0);
        let slot = Arc::new(Slot {
            buf: Mutex::new(LaunchBatch::new(self.shard_count)),
            delivery: Arc::downgrade(&self.delivery),
            pending_total: Arc::clone(&self.pending_total),
        });
        self.slots.lock().push(Arc::clone(&slot));
        slots.insert(0, (self.id, LocalSlot(slot)));
    }

    /// Appends one routed event to the calling thread's buffer, flushing
    /// the buffer when it reaches the capacity trigger. The whole hot
    /// path runs inside the thread-local borrow, so an event costs one id
    /// compare, one uncontended slot lock and one `Vec` push — no
    /// refcount traffic.
    pub(crate) fn push(&self, shard: usize, event: ProducerEvent) {
        LOCAL_SLOTS.with(|slots| {
            let mut slots = slots.borrow_mut();
            let pos = slots.iter().position(|(id, _)| *id == self.id);
            let pos = match pos {
                Some(pos) => pos,
                None => {
                    self.register_slot(&mut slots);
                    0
                }
            };
            if pos != 0 {
                // Keep the active sink's slot at index 0.
                slots.swap(0, pos);
            }
            let mut buf = slots[0].1 .0.buf.lock();
            // Published while the slot lock is held, so once this event's
            // producer call has returned, any later `flush_all` observes
            // a non-zero total (the runtime's own synchronization orders
            // a launch's return before its activity's delivery).
            self.pending_total.fetch_add(1, Ordering::AcqRel);
            buf.push(shard, event);
            if buf.pending >= self.capacity {
                let flushed = buf.flush(self.delivery.as_ref());
                self.pending_total.fetch_sub(flushed, Ordering::AcqRel);
            }
        });
    }

    /// Flushes **every** thread's buffer — the barrier half of the
    /// design: snapshots, epochs, counters and activity deliveries all
    /// observe a world with no batched event left behind. Slots whose
    /// thread has exited (their quiesce flush already ran) are pruned.
    /// When nothing is buffered anywhere (the common case on
    /// activity-heavy paths), this is a single atomic load.
    pub(crate) fn flush_all(&self) {
        if self.pending_total.load(Ordering::Acquire) == 0 {
            return;
        }
        let slots: Vec<Arc<Slot>> = {
            let mut registry = self.slots.lock();
            registry.retain(|slot| Arc::strong_count(slot) > 1);
            registry.clone()
        };
        for slot in slots {
            let flushed = slot.buf.lock().flush(self.delivery.as_ref());
            self.pending_total.fetch_sub(flushed, Ordering::AcqRel);
        }
    }

    /// Sheds the flush-window capacity every thread's buffer retains
    /// between flushes — the batching analogue of `CctShard::trim`, run
    /// at epoch boundaries so resident memory between epochs tracks live
    /// state, not the largest window ever buffered.
    pub(crate) fn trim(&self) {
        let slots: Vec<Arc<Slot>> = self.slots.lock().clone();
        for slot in slots {
            let mut buf = slot.buf.lock();
            for bucket in &mut buf.shards {
                if bucket.capacity() > 16 && bucket.capacity() / 4 > bucket.len() {
                    bucket.shrink_to_fit();
                }
            }
        }
    }

    /// Approximate resident bytes of all buffered events.
    pub(crate) fn approx_bytes(&self) -> usize {
        self.slots
            .lock()
            .iter()
            .map(|slot| slot.buf.lock().approx_bytes())
            .sum()
    }
}

/// Counters a delivery target maintains so batching effectiveness is
/// observable ([`SinkCounters::producer_flushes`] /
/// [`SinkCounters::batched_events`]).
#[derive(Default)]
pub(crate) struct BatchCounters {
    /// Per-shard batch deliveries performed.
    pub(crate) flushes: AtomicU64,
    /// Events that travelled through thread-local batches.
    pub(crate) events: AtomicU64,
}

impl BatchCounters {
    pub(crate) fn record(&self, events: u64) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.events.fetch_add(events, Ordering::Relaxed);
    }
}

/// Synchronous-mode delivery: apply the whole batch under one shard-lock
/// acquisition.
struct SyncDelivery {
    inner: Arc<ShardedSink>,
    counters: BatchCounters,
}

impl BatchDelivery for SyncDelivery {
    fn sharded(&self) -> &ShardedSink {
        &self.inner
    }

    fn deliver(&self, shard: usize, events: Vec<ProducerEvent>) {
        self.counters.record(events.len() as u64);
        self.inner.apply_producer_batch(shard, &events);
    }
}

/// The synchronous pipeline with thread-local producer batching: wraps a
/// [`ShardedSink`] so producers append launches and CPU samples to
/// per-thread buffers and pay the routing/locking cost once per
/// [`PipelineConfig::launch_batch`] events instead of per event. Every
/// barrier (flush, snapshot, finish, counters) and every activity
/// delivery flushes all buffers first, so observed profiles are
/// indistinguishable from the unbatched sink's.
///
/// [`PipelineConfig::launch_batch`]: crate::PipelineConfig::launch_batch
pub struct BatchingSink {
    delivery: Arc<SyncDelivery>,
    batcher: Batcher,
}

impl BatchingSink {
    /// Wraps `inner`, flushing each thread's buffer every `launch_batch`
    /// events (1 = deliver per event; prefer the bare [`ShardedSink`]
    /// then).
    pub fn new(inner: Arc<ShardedSink>, launch_batch: usize) -> Arc<Self> {
        let delivery = Arc::new(SyncDelivery {
            inner,
            counters: BatchCounters::default(),
        });
        let batcher = Batcher::new(
            Arc::clone(&delivery) as Arc<dyn BatchDelivery>,
            launch_batch,
        );
        Arc::new(BatchingSink { delivery, batcher })
    }

    /// The wrapped sharded sink holding the profile state.
    pub fn inner(&self) -> &Arc<ShardedSink> {
        &self.delivery.inner
    }

    /// Flushes every thread's pending batch without taking a snapshot —
    /// an explicit quiesce point for tests and embedders.
    pub fn flush_batches(&self) {
        self.batcher.flush_all();
    }
}

impl EventSink for BatchingSink {
    fn gpu_launch(&self, origin: &EventOrigin, path: &CallPath, api: ApiKind) {
        self.gpu_launch_owned(origin, path.clone(), api);
    }

    fn gpu_launch_owned(&self, origin: &EventOrigin, path: CallPath, api: ApiKind) {
        let idx = self.delivery.inner.route(origin);
        self.batcher.push(
            idx,
            ProducerEvent::Launch {
                origin: *origin,
                path,
                api,
            },
        );
    }

    fn activity_batch(&self, batch: &[Activity]) {
        if batch.is_empty() {
            return;
        }
        // Every buffered launch anywhere must be bound and applied before
        // these records route through the directory (module docs); the
        // records themselves — already batched by the GPU runtime — are
        // applied eagerly so correlation pruning keeps the unbatched
        // cadence. Applied from the borrow either way: no record is ever
        // cloned on this path.
        self.batcher.flush_all();
        self.delivery.inner.activity_batch(batch);
    }

    fn activity_batch_owned(&self, batch: Vec<Activity>) {
        self.activity_batch(&batch);
    }

    fn cpu_sample(&self, origin: &EventOrigin, path: &CallPath, metric: MetricKind, value: f64) {
        self.cpu_sample_owned(origin, path.clone(), metric, value);
    }

    fn cpu_sample_owned(
        &self,
        origin: &EventOrigin,
        path: CallPath,
        metric: MetricKind,
        value: f64,
    ) {
        let idx = self.delivery.inner.route(origin);
        self.batcher.push(
            idx,
            ProducerEvent::Sample {
                path,
                metric,
                value,
            },
        );
    }

    fn epoch_complete(&self) {
        self.batcher.flush_all();
        self.batcher.trim();
        self.delivery.inner.epoch_complete();
    }

    fn snapshot(&self) -> CallingContextTree {
        self.batcher.flush_all();
        self.delivery.inner.snapshot()
    }

    fn with_snapshot(&self, f: &mut dyn FnMut(&CallingContextTree)) {
        self.batcher.flush_all();
        self.delivery.inner.with_snapshot(f);
    }

    fn finish_snapshot(&self) -> CallingContextTree {
        self.batcher.flush_all();
        self.delivery.inner.finish_snapshot()
    }

    fn timeline_snapshot(&self) -> Option<deepcontext_timeline::TimelineSnapshot> {
        // Flush buffered launches first so every context an interval
        // could reference is inserted — the same barrier every snapshot
        // path runs (activity records themselves are never buffered
        // here, so the rings are already current).
        self.batcher.flush_all();
        self.delivery.inner.timeline_snapshot()
    }

    fn counters(&self) -> SinkCounters {
        // Flush first so counter reads observe every produced event,
        // exactly as the unbatched sink would.
        self.batcher.flush_all();
        SinkCounters {
            producer_flushes: self.delivery.counters.flushes.load(Ordering::Relaxed),
            batched_events: self.delivery.counters.events.load(Ordering::Relaxed),
            ..self.delivery.inner.counters()
        }
    }

    fn approx_bytes(&self) -> usize {
        self.delivery.inner.approx_bytes() + self.batcher.approx_bytes()
    }
}

impl Drop for BatchingSink {
    fn drop(&mut self) {
        // Deliver whatever producer threads still buffer into the wrapped
        // sink — embedders holding `inner()` keep observing a complete
        // profile, the same drop contract the asynchronous sink honours.
        // (Thread-local destructors could not: the `SyncDelivery` weak
        // reference dies with this wrapper.)
        self.batcher.flush_all();
    }
}

impl std::fmt::Debug for BatchingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchingSink")
            .field("shards", &self.delivery.inner.shard_count())
            .field("launch_batch", &self.batcher.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::Frame;

    #[test]
    fn flush_walks_only_occupied_buckets() {
        // A 64-shard layout with two occupied buckets must deliver
        // exactly two batches, in first-touch order, and reset occupancy
        // for the next window.
        struct Capture {
            inner: Arc<ShardedSink>,
            delivered: Mutex<Vec<(usize, usize)>>,
        }
        impl BatchDelivery for Capture {
            fn sharded(&self) -> &ShardedSink {
                &self.inner
            }
            fn deliver(&self, shard: usize, events: Vec<ProducerEvent>) {
                self.delivered.lock().push((shard, events.len()));
            }
        }
        let interner = deepcontext_core::Interner::new();
        let capture = Capture {
            inner: ShardedSink::new(Arc::clone(&interner), 64),
            delivered: Mutex::new(Vec::new()),
        };
        let mut path = CallPath::new();
        path.push(Frame::operator("aten::relu", &interner));
        let sample = || ProducerEvent::Sample {
            path: path.clone(),
            metric: MetricKind::CpuTime,
            value: 1.0,
        };
        let mut batch = LaunchBatch::new(64);
        batch.push(7, sample());
        batch.push(7, sample());
        batch.push(42, sample());
        assert_eq!(batch.occupied, vec![7, 42]);
        assert_eq!(batch.flush(&capture), 3);
        assert_eq!(*capture.delivered.lock(), vec![(7, 2), (42, 1)]);
        assert!(batch.occupied.is_empty());
        assert_eq!(batch.pending, 0);
        // An empty flush delivers nothing; the next window starts clean.
        assert_eq!(batch.flush(&capture), 0);
        batch.push(3, sample());
        assert_eq!(batch.flush(&capture), 1);
        assert_eq!(capture.delivered.lock().last(), Some(&(3, 1)));
    }

    #[test]
    fn dropping_the_wrapper_delivers_buffered_events_to_inner() {
        // Embedders may keep `inner()` past the wrapper's lifetime; a
        // partial batch buffered at drop time must still reach the
        // wrapped sink (the sync analogue of AsyncSink's drop contract —
        // thread-local destructors cannot do it, their weak delivery
        // reference dies with the wrapper).
        let interner = deepcontext_core::Interner::new();
        let inner = ShardedSink::new(Arc::clone(&interner), 4);
        let sink = BatchingSink::new(Arc::clone(&inner), 64);
        let origin = EventOrigin {
            tid: Some(1),
            ..EventOrigin::default()
        };
        let mut path = CallPath::new();
        path.push(Frame::operator("aten::relu", &interner));
        sink.cpu_sample(&origin, &path, MetricKind::CpuTime, 2.0);
        assert_eq!(
            inner.snapshot().total(MetricKind::CpuTime),
            0.0,
            "still buffered"
        );
        drop(sink);
        assert_eq!(
            inner.snapshot().total(MetricKind::CpuTime),
            2.0,
            "drop delivered the partial batch"
        );
    }
}
