//! Regenerates **Figure 8**: the bottom-up view of U-Net — per-kernel
//! aggregation across call paths, surfacing `cudnn::nchwToNhwcKernel`.

use deepcontext_bench::{deepcontext_profile, EngineKind};
use deepcontext_core::MetricKind;
use deepcontext_flamegraph::{AsciiOptions, FlameGraph};
use dl_models::{UNet, WorkloadOptions};
use sim_gpu::DeviceSpec;

fn main() {
    let db = deepcontext_profile(
        &DeviceSpec::a100_sxm(),
        &UNet,
        &WorkloadOptions::default(),
        EngineKind::Eager,
        3,
    );

    println!("Figure 8: bottom-up view of U-Net (GPU time)\n");
    let graph = FlameGraph::bottom_up(db.cct(), MetricKind::GpuTime);
    print!(
        "{}",
        graph.to_ascii(&AsciiOptions {
            min_share: 0.02,
            max_depth: 3,
            ..Default::default()
        })
    );

    // The §6.2 observation: conversion kernels hold a meaningful share.
    let total = graph.root().value;
    let conversions: f64 = graph
        .root()
        .children
        .iter()
        .filter(|c| c.label.contains("nchwToNhwc") || c.label.contains("nhwcToNchw"))
        .map(|c| c.value)
        .sum();
    println!(
        "\nlayout-conversion kernels: {:.1}% of GPU time (paper: 15.4% for nchwToNhwc)",
        conversions / total * 100.0
    );
}
