//! The asynchronous ingestion pipeline.
//!
//! [`AsyncSink`] decouples event *production* from event *attribution*:
//! producers (launch callbacks, activity-buffer flushes, CPU samplers)
//! only route the event, record its correlation's home shard in the
//! directory, and enqueue an owned copy into that shard's bounded
//! channel — no shard lock, no tree mutation, no metric fold on the
//! producer's critical path. A configurable worker pool drains the
//! channels and drives the events through the same
//! [`ShardedSink`] per-shard entry points the synchronous mode uses
//! ([`ShardedSink::apply_launch`] et al.), so the two modes cannot drift
//! apart semantically.
//!
//! # Ordering
//!
//! Correctness rests on two invariants:
//!
//! * **Per-shard FIFO.** Each shard's events flow through one bounded
//!   channel consumed by exactly one worker (shard *i* is owned by
//!   worker *i* mod `workers`), so a launch is always applied before the
//!   activity records that resolve through its correlation — the
//!   activity can only be enqueued after the launch callback returned.
//! * **Enqueue-time route binding.** The producer registers
//!   `correlation → shard` in the directory *before* the launch event is
//!   applied ([`ShardedSink::bind_route`]), so activity records that
//!   arrive while the launch is still queued route to the same shard and
//!   find the binding once the worker reaches it.
//!
//! # Backpressure
//!
//! Bounded channels make the producer-side cost explicit when workers
//! fall behind ([`BackpressurePolicy`]):
//!
//! * [`Block`](BackpressurePolicy::Block) (default): the producer blocks
//!   until the worker frees a slot — no event is ever lost, the workload
//!   stalls instead (the paper's low-overhead contract: prefer bounded
//!   memory over unbounded queues).
//! * [`DropOldest`](BackpressurePolicy::DropOldest): the producer evicts
//!   the oldest queued message, counts the discarded events in
//!   [`SinkCounters::dropped_events`], and enqueues — the workload never
//!   stalls, the profile becomes a sample.
//!
//! # Drain barriers
//!
//! Every snapshot path ([`EventSink::snapshot`] / `with_snapshot` /
//! `finish_snapshot`), `epoch_complete` and `counters` first runs a
//! deterministic drain barrier: it records each queue's enqueue count
//! and waits until the matching number of messages has been applied (or
//! dropped). Events enqueued *after* the barrier started are not waited
//! for, so a barrier under live producers still terminates. This is what
//! keeps `Profiler::flush()` / `finish()` / `with_cct` exactly as
//! deterministic as the synchronous mode.
//!
//! `epoch_complete` additionally propagates the flush boundary through
//! the queues as an [`Event::Epoch`] marker per shard, so shard trim /
//! generation semantics happen in event order on the owning worker, then
//! trims the routing directory once the barrier completes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{self, TrySendError};

use deepcontext_core::failpoint::sites as fp_sites;
use deepcontext_core::{CallPath, CallingContextTree, Failpoints, MetricKind, TrackKey};
use deepcontext_telemetry::{
    journal_sites, names, Counter, Gauge, Histogram, Journal, JournalSeverity,
};
use dlmonitor::EventOrigin;
use sim_gpu::{Activity, ActivityKind, ApiKind};

use crate::batch::{BatchCounters, BatchDelivery, Batcher, ProducerEvent};
use crate::self_telemetry::PipelineTelemetry;
use crate::sharded::ShardedSink;
use crate::sink::{EventSink, SinkCounters};

/// What producers do when a shard queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the producer until the worker frees a slot. No event is
    /// ever dropped; the monitored workload absorbs the stall.
    #[default]
    Block,
    /// Evict the oldest queued message (counting its events as dropped)
    /// and enqueue. The workload never stalls; the profile under
    /// sustained overload becomes a sample of the event stream.
    DropOldest,
}

/// Asynchronous-pipeline tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Attribution worker threads. `0` = auto: one per shard, capped at
    /// the host's available parallelism.
    pub workers: usize,
    /// Bounded capacity of each shard's queue, in messages (one launch,
    /// one CPU sample, one routed activity bucket, or one flushed
    /// thread-local batch per message).
    pub queue_capacity: usize,
    /// What producers do when a shard queue is full.
    pub backpressure: BackpressurePolicy,
    /// Thread-local producer batching threshold, in events: launches and
    /// CPU samples accumulate in a per-thread buffer that is flushed —
    /// one striped-directory bind pass plus one channel batch-push per
    /// shard — when this many events are pending, at every barrier
    /// (flush / snapshot / finish / epoch / counters), before any
    /// activity delivery, and on thread exit. `1` disables batching
    /// (every event is enqueued as it happens). The default honours the
    /// `DEEPCONTEXT_LAUNCH_BATCH` environment override
    /// ([`default_launch_batch`](crate::default_launch_batch)).
    ///
    /// Applies to the synchronous pipeline too: the profiler wraps its
    /// [`ShardedSink`] in a [`BatchingSink`](crate::BatchingSink) when
    /// this is above 1.
    pub launch_batch: usize,
    /// Which correlation-directory layout the sink uses (see
    /// [`crate::directory`]). The default honours the
    /// `DEEPCONTEXT_DIRECTORY_MAP` environment override
    /// ([`default_directory_map`](crate::default_directory_map)).
    pub directory_map: crate::DirectoryMapKind,
    /// Deterministic fault-injection registry for the pipeline's sites
    /// (see [`crate::failpoint`]). The default honours the
    /// `DEEPCONTEXT_FAILPOINTS` environment spec; when no spec is set
    /// every site check is one branch on an empty registry.
    pub failpoints: Failpoints,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: 0,
            queue_capacity: 256,
            backpressure: BackpressurePolicy::Block,
            launch_batch: crate::default_launch_batch(),
            directory_map: crate::default_directory_map(),
            failpoints: Failpoints::from_env(),
        }
    }
}

impl PipelineConfig {
    fn resolved_workers(&self, shards: usize) -> usize {
        let auto = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        match self.workers {
            0 => shards.min(auto()).max(1),
            n => n.min(shards).max(1),
        }
    }
}

/// One message through a shard queue. Activity buckets are pre-routed by
/// the producer, so a message never needs re-routing on the worker.
enum Event {
    Launch {
        origin: EventOrigin,
        path: CallPath,
        api: ApiKind,
    },
    Activities(Vec<Activity>),
    Sample {
        path: CallPath,
        metric: MetricKind,
        value: f64,
    },
    /// One flushed thread-local producer batch (launches and samples in
    /// buffer order), applied under a single shard-lock acquisition.
    Batch(Vec<ProducerEvent>),
    /// A flush boundary, propagated per shard in event order.
    Epoch,
}

impl Event {
    /// Underlying profiler events carried by this message (what the
    /// `enqueued_events` / `dropped_events` counters count).
    fn weight(&self) -> u64 {
        match self {
            Event::Activities(batch) => batch.len() as u64,
            Event::Batch(events) => events.len() as u64,
            Event::Launch { .. } | Event::Sample { .. } => 1,
            Event::Epoch => 0,
        }
    }
}

/// The context a dropped message would have attributed to, when it
/// carries one: launches and samples carry their call path, flushed
/// producer batches yield their first event's path. Activity buckets
/// carry only correlations (their context lives in the shard) and epochs
/// carry nothing — neither contributes a victim sample.
fn victim_path(event: &Event) -> Option<&CallPath> {
    match event {
        Event::Launch { path, .. } | Event::Sample { path, .. } => Some(path),
        Event::Batch(events) => events.first().map(|e| match e {
            ProducerEvent::Launch { path, .. } | ProducerEvent::Sample { path, .. } => path,
        }),
        Event::Activities(_) | Event::Epoch => None,
    }
}

/// One shard's bounded queue plus the sequence counters the drain
/// barrier is built on: `enqueued` counts messages accepted, `applied`
/// counts messages retired (attributed by a worker or evicted by
/// `DropOldest`). `applied >= enqueued-at-barrier-entry` ⇒ the shard has
/// caught up with everything that preceded the barrier.
struct ShardQueue {
    tx: channel::Sender<Event>,
    rx: channel::Receiver<Event>,
    enqueued: AtomicU64,
    applied: AtomicU64,
    /// Epoch markers displaced from the queue by `DropOldest` eviction,
    /// owed to the shard: the owning worker applies them (collapsed to
    /// one `epoch_complete_shard`, since back-to-back epochs with
    /// nothing between them are a no-op after the first) at the end of
    /// its next pass over the shard.
    pending_epochs: AtomicU64,
    /// Events this queue's `DropOldest` evictions discarded — the
    /// per-shard half of the global `dropped_events` counter, feeding the
    /// synthetic `<dropped>` CCT context.
    dropped: AtomicU64,
    /// How much of [`dropped`](Self::dropped) has already been attributed
    /// to the shard's `<dropped>` context (snapshot paths publish the
    /// delta).
    dropped_published: AtomicU64,
    /// Events this shard lost to caught worker panics — the per-shard
    /// half of the global `poisoned_events` counter, feeding the
    /// synthetic `<poisoned>` CCT context the same way `dropped` feeds
    /// `<dropped>`.
    poisoned: AtomicU64,
    /// How much of [`poisoned`](Self::poisoned) has been attributed.
    poisoned_published: AtomicU64,
    /// Running count of events evicted by `DropOldest`, driving the
    /// 1-in-[`DROP_SAMPLE_STRIDE`] victim sampler.
    evicted_seen: AtomicU64,
    /// Sampled victim contexts awaiting publication — a bounded ring
    /// (oldest overwritten at [`DROP_SAMPLE_RING`]) drained by snapshot
    /// paths into `<dropped>`-child estimates.
    victims: Mutex<Vec<CallPath>>,
}

/// Parking slot for one worker: producers nudge it only when it is (or
/// may be) parked, so the enqueue fast path costs one atomic load. The
/// worker re-checks for work after flagging itself parked and waits with
/// a timeout, so a lost nudge costs at most one timeout period.
struct Parker {
    mutex: Mutex<()>,
    cv: Condvar,
    parked: AtomicBool,
}

impl Parker {
    fn new() -> Self {
        Parker {
            mutex: Mutex::new(()),
            cv: Condvar::new(),
            parked: AtomicBool::new(false),
        }
    }

    fn nudge(&self) {
        if self.parked.load(Ordering::Acquire) {
            let _guard = self.mutex.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }
}

const PARK_TIMEOUT: Duration = Duration::from_micros(500);
/// Messages a worker retires from one shard before visiting the next —
/// bounds per-shard latency while still coalescing adjacent activity
/// buckets under one shard lock.
const COALESCE: usize = 128;
/// Activity records a worker accumulates into one coalesced bucket
/// before applying it. Coalescing across flush boundaries amortizes the
/// shard lock and the fold, but each coalesced apply runs `end_batch`
/// only once — so an unbounded run would defer two-phase pruning and let
/// live correlation state balloon with the queue backlog. This cap keeps
/// the prune cadence within a small factor of synchronous mode.
const COALESCE_RECORDS: usize = 512;
/// Events per `Event::Batch` queue message: flushed producer batches
/// larger than this are chunked (and pushed as one single-notify channel
/// run), so a message never represents an unbounded slice of the queue's
/// capacity.
const MESSAGE_GRAIN: usize = 64;
/// Per-context drop-sampling stride: under `DropOldest`, every
/// `DROP_SAMPLE_STRIDE`-th evicted event contributes its message's
/// already-bound context to the shard's victim ring, so each published
/// victim stands for this many dropped events (an unbiased per-context
/// estimate of where the overload fell).
const DROP_SAMPLE_STRIDE: u64 = 16;
/// Capacity of each shard's victim ring — bounds sampler memory under
/// sustained overload; the ring keeps the *most recent* victims.
const DROP_SAMPLE_RING: usize = 32;

/// The asynchronous layer's pre-registered telemetry handles: per-shard
/// queue-depth histograms plus the global enqueue/drop counters and
/// queue gauges. Built once at [`AsyncSink::new`] from the wrapped
/// sink's [`PipelineTelemetry`]; absent when telemetry is off.
struct SharedTelemetry {
    pipeline: Arc<PipelineTelemetry>,
    enqueued: Arc<Counter>,
    dropped: Arc<Counter>,
    poisoned: Arc<Counter>,
    worker_panics: Arc<Counter>,
    max_depth: Arc<Gauge>,
    queue_depth: Vec<Arc<Histogram>>,
}

/// One worker's telemetry handles, registered (per `worker` label) when
/// its loop starts.
struct WorkerTelemetry {
    pipeline: Arc<PipelineTelemetry>,
    busy_ns: Arc<Counter>,
    parked_ns: Arc<Counter>,
    batch_size: Arc<Histogram>,
}

impl WorkerTelemetry {
    fn register(shared: &SharedTelemetry, worker: usize) -> WorkerTelemetry {
        let handle = shared.pipeline.handle();
        let label = worker.to_string();
        WorkerTelemetry {
            busy_ns: handle.counter(names::WORKER_BUSY_NS, &[("worker", label.as_str())]),
            parked_ns: handle.counter(names::WORKER_PARKED_NS, &[("worker", label.as_str())]),
            batch_size: handle.histogram(names::WORKER_BATCH_SIZE, &[("worker", label.as_str())]),
            pipeline: Arc::clone(&shared.pipeline),
        }
    }
}

struct Shared {
    inner: Arc<ShardedSink>,
    queues: Vec<ShardQueue>,
    parkers: Vec<Parker>,
    policy: BackpressurePolicy,
    shutdown: AtomicBool,
    paused: AtomicBool,
    paused_workers: AtomicUsize,
    /// Per-shard quarantine flags: set when an apply against the shard
    /// panicked (caught). A quarantined shard's queue keeps draining —
    /// its data events are accounted as poisoned, its flush boundaries
    /// still retire correlation state — so drain barriers, `pause`,
    /// `resume` and `finish` all complete as if the shard were healthy.
    quarantined: Vec<AtomicBool>,
    /// Fault-injection registry ([`PipelineConfig::failpoints`]).
    failpoints: Failpoints,
    // Drain-barrier rendezvous.
    drain_mutex: Mutex<()>,
    drain_cv: Condvar,
    drain_waiters: AtomicUsize,
    /// Serializes `<dropped>`-telemetry publication (see
    /// [`publish_drops`](Shared::publish_drops)).
    drop_publish: Mutex<()>,
    // Pipeline counters.
    enqueued_events: AtomicU64,
    dropped_events: AtomicU64,
    poisoned_events: AtomicU64,
    worker_panics: AtomicU64,
    max_queue_depth: AtomicU64,
    drain_waits: AtomicU64,
    worker_batches: AtomicU64,
    worker_events: AtomicU64,
    producer_batches: BatchCounters,
    /// Self-telemetry handles (`None` = telemetry off).
    telemetry: Option<SharedTelemetry>,
    /// Incident journal (`None` = journaling off), shared with the inner
    /// sink so every pipeline layer appends to one causal record.
    journal: Option<Arc<Journal>>,
    /// Whether the pipeline is inside a drop storm: set by the first
    /// `DropOldest` eviction after a clean window, cleared by the first
    /// drain barrier that completes afterwards. Journal-only state — the
    /// flag is never read when journaling is off.
    in_drop_storm: AtomicBool,
    /// Events dropped since the current storm began (reported by the
    /// storm-end journal event, then reset).
    storm_dropped: AtomicU64,
}

impl Shared {
    fn worker_for(&self, shard: usize) -> usize {
        shard % self.parkers.len()
    }

    /// Messages queued at `shard` right now, derived from the sequence
    /// counters so the hot path never takes the queue lock twice.
    fn depth(&self, shard: usize) -> u64 {
        let q = &self.queues[shard];
        q.enqueued
            .load(Ordering::Acquire)
            .saturating_sub(q.applied.load(Ordering::Acquire))
    }

    /// Counts `weight` events as accepted, mirroring into telemetry when
    /// it is on.
    fn note_enqueued(&self, weight: u64) {
        self.enqueued_events.fetch_add(weight, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.enqueued.add(weight);
        }
    }

    /// Counts `weight` events as dropped, mirroring into telemetry when
    /// it is on. With journaling on, the first drop after a clean window
    /// opens a *drop storm*: one onset event now, one end event at the
    /// first drain barrier that completes afterwards — the journal shows
    /// the storm's extent, not one entry per evicted message.
    fn note_dropped(&self, weight: u64) {
        self.dropped_events.fetch_add(weight, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.dropped.add(weight);
        }
        if let Some(journal) = &self.journal {
            self.storm_dropped.fetch_add(weight, Ordering::Relaxed);
            if !self.in_drop_storm.swap(true, Ordering::AcqRel) {
                journal.record(
                    JournalSeverity::Warn,
                    journal_sites::DROP_STORM_START,
                    &[("weight", &weight.to_string())],
                );
            }
        }
    }

    /// Counts `weight` events of shard `shard` as poisoned (lost to a
    /// caught worker panic), mirroring into telemetry when it is on.
    /// Snapshot paths publish the per-shard tally into the shard's
    /// synthetic `<poisoned>` context.
    fn note_poisoned(&self, shard: usize, weight: u64) {
        if weight == 0 {
            return;
        }
        self.poisoned_events.fetch_add(weight, Ordering::Relaxed);
        self.queues[shard]
            .poisoned
            .fetch_add(weight, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.poisoned.add(weight);
        }
    }

    fn is_quarantined(&self, shard: usize) -> bool {
        self.quarantined[shard].load(Ordering::Acquire)
    }

    /// Records one caught worker panic and quarantines the shard whose
    /// apply unwound.
    fn record_worker_panic(&self, shard: usize) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
        let already = self.quarantined[shard].swap(true, Ordering::Release);
        if let Some(t) = &self.telemetry {
            t.worker_panics.add(1);
        }
        if let Some(journal) = &self.journal {
            if !already {
                journal.record(
                    JournalSeverity::Error,
                    journal_sites::SHARD_QUARANTINE,
                    &[("shard", &shard.to_string())],
                );
            }
        }
    }

    /// Runs one attribution `apply` against shard `idx` behind the fault
    /// boundary: the `worker_panic` failpoint fires first (so injected
    /// panics unwind before any state mutates and event conservation
    /// stays exact), and any unwind is caught and converted into a
    /// shard quarantine. Returns whether the apply completed, so the
    /// caller can account the message's events as attributed or
    /// poisoned.
    fn apply_isolated(&self, idx: usize, apply: impl FnOnce()) -> bool {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if self
                .failpoints
                .should_fire_at(fp_sites::WORKER_PANIC, idx as u64)
            {
                panic!("injected worker_panic at shard {idx}");
            }
            apply();
        }));
        if outcome.is_err() {
            self.record_worker_panic(idx);
        }
        outcome.is_ok()
    }

    /// Accounts one message arriving at a quarantined shard: data events
    /// join the `<poisoned>` tally and release the correlation state
    /// nothing will ever retire; flush boundaries are control flow and
    /// still retire the shard's deferred correlations (caught if the
    /// shard's state is broken enough to panic again).
    fn poison_message(&self, idx: usize, event: &Event) {
        match event {
            Event::Epoch => {
                let _ = catch_unwind(AssertUnwindSafe(|| self.inner.epoch_complete_shard(idx)));
            }
            _ => {
                self.note_poisoned(idx, event.weight());
                self.discard_bindings_of(event);
            }
        }
    }

    /// The quarantined-shard drain loop: messages keep retiring (so
    /// drain barriers and shutdown never hang on a poisoned shard) but
    /// nothing touches the shard's tree except flush boundaries.
    fn drain_quarantined_shard(&self, idx: usize) -> u64 {
        let q = &self.queues[idx];
        let mut messages = 0u64;
        let mut events = 0u64;
        while messages < COALESCE as u64 {
            let Ok(event) = q.rx.try_recv() else { break };
            messages += 1;
            events += event.weight();
            self.poison_message(idx, &event);
            self.retire(idx, 1);
        }
        if q.pending_epochs.swap(0, Ordering::Acquire) > 0 {
            let _ = catch_unwind(AssertUnwindSafe(|| self.inner.epoch_complete_shard(idx)));
        }
        events
    }

    /// 1-in-K victim sampling at `DropOldest` eviction time: when the
    /// shard's evicted-event count crosses a [`DROP_SAMPLE_STRIDE`]
    /// boundary, the evicted message's already-bound context joins the
    /// shard's bounded victim ring. Published victims attribute
    /// `DROP_SAMPLE_STRIDE` events each under `<dropped>`, so the
    /// profile reports *which* contexts the overload fell on, not just
    /// how much was lost.
    fn sample_victim(&self, shard: usize, event: &Event, weight: u64) {
        if weight == 0 {
            return;
        }
        let q = &self.queues[shard];
        let seen = q.evicted_seen.fetch_add(weight, Ordering::Relaxed);
        if seen / DROP_SAMPLE_STRIDE == (seen + weight) / DROP_SAMPLE_STRIDE {
            return;
        }
        let Some(path) = victim_path(event) else {
            return;
        };
        let mut ring = q.victims.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= DROP_SAMPLE_RING {
            ring.remove(0);
        }
        ring.push(path.clone());
    }

    /// Records the queue depth observed by an enqueue at `shard`.
    fn note_depth(&self, shard: usize, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.queue_depth[shard].record(depth);
            t.max_depth.record_max(depth);
        }
    }

    /// Marks `n` messages of shard `idx` retired and wakes any drain
    /// barrier that may be waiting on them.
    fn retire(&self, idx: usize, n: u64) {
        self.queues[idx].applied.fetch_add(n, Ordering::AcqRel);
        if self.drain_waiters.load(Ordering::Acquire) > 0 {
            let _guard = self.drain_mutex.lock().unwrap_or_else(|e| e.into_inner());
            self.drain_cv.notify_all();
        }
    }

    /// Enqueues one message to `shard`, honouring the backpressure
    /// policy, and nudges the owning worker.
    fn enqueue(&self, shard: usize, event: Event) {
        self.failpoints
            .stall_at(fp_sites::QUEUE_STALL, shard as u64);
        let weight = event.weight();
        let q = &self.queues[shard];
        match self.policy {
            BackpressurePolicy::Block => {
                if q.tx.send(event).is_err() {
                    // Workers are gone (sink shutting down); account the
                    // message as retired so barriers never hang.
                    self.note_dropped(weight);
                    self.note_enqueued(weight);
                    q.enqueued.fetch_add(1, Ordering::AcqRel);
                    self.retire(shard, 1);
                    return;
                }
            }
            BackpressurePolicy::DropOldest => {
                let mut event = event;
                loop {
                    match q.tx.try_send(event) {
                        Ok(()) => break,
                        Err(TrySendError::Full(back)) => {
                            match q.rx.try_recv() {
                                Ok(Event::Epoch) => {
                                    // Flush boundaries are control flow,
                                    // never data: a displaced marker is
                                    // deferred, not dropped — the owning
                                    // worker applies it at the end of
                                    // its next pass. Applying an epoch
                                    // late only delays retirement (the
                                    // conservative direction), and never
                                    // blocks this producer.
                                    self.retire(shard, 1);
                                    q.pending_epochs.fetch_add(1, Ordering::Release);
                                }
                                Ok(old) => {
                                    // Evict the oldest data message; its
                                    // events are gone and counted (both
                                    // globally and per shard, so the
                                    // synthetic `<dropped>` context can
                                    // localize the overload), and any
                                    // correlation state that only the
                                    // evicted message would have retired
                                    // is discarded with it — otherwise
                                    // every dropped launch or terminal
                                    // record would leak its
                                    // directory/shard binding forever.
                                    let weight = old.weight();
                                    self.note_dropped(weight);
                                    q.dropped.fetch_add(weight, Ordering::Relaxed);
                                    self.sample_victim(shard, &old, weight);
                                    self.discard_bindings_of(&old);
                                    self.retire(shard, 1);
                                }
                                Err(_) => {}
                            }
                            event = back;
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            self.note_dropped(weight);
                            self.note_enqueued(weight);
                            q.enqueued.fetch_add(1, Ordering::AcqRel);
                            self.retire(shard, 1);
                            return;
                        }
                    }
                }
            }
        }
        self.note_enqueued(weight);
        let enq = q.enqueued.fetch_add(1, Ordering::AcqRel) + 1;
        let depth = enq.saturating_sub(q.applied.load(Ordering::Acquire));
        self.note_depth(shard, depth);
        self.nudge_worker(shard);
    }

    /// Nudges the worker owning `shard` — unless the pool is paused:
    /// paused workers ignore work anyway, and `resume` re-nudges
    /// everyone, so skipping saves a mutex + notify per enqueue during a
    /// pause (worst case, a racing resume costs one park timeout).
    fn nudge_worker(&self, shard: usize) {
        if !self.paused.load(Ordering::Relaxed) {
            self.parkers[self.worker_for(shard)].nudge();
        }
    }

    /// Enqueues a run of messages to `shard` under one channel pass.
    /// Under `Block` the whole run goes through the channel's
    /// single-notify batch push ([`channel::Sender::send_batch`]) — one
    /// lock round-trip and at most one waiter wake for the entire flush
    /// instead of one per message. `DropOldest` falls back to the
    /// per-message eviction loop, which must interleave sends with
    /// evictions.
    fn enqueue_run(&self, shard: usize, run: Vec<Event>) {
        if run.is_empty() {
            return;
        }
        match self.policy {
            BackpressurePolicy::Block => {
                let weight: u64 = run.iter().map(Event::weight).sum();
                let messages = run.len() as u64;
                let q = &self.queues[shard];
                let mut lost = 0u64;
                if let Err(channel::SendError(rest)) = q.tx.send_batch(run) {
                    // Workers are gone (sink shutting down); account the
                    // unsent remainder as dropped-and-retired so barriers
                    // never hang (mirrors `enqueue`'s disconnect path).
                    lost = rest.len() as u64;
                    self.note_dropped(rest.iter().map(Event::weight).sum());
                }
                self.note_enqueued(weight);
                let enq = q.enqueued.fetch_add(messages, Ordering::AcqRel) + messages;
                if lost > 0 {
                    self.retire(shard, lost);
                }
                let depth = enq.saturating_sub(q.applied.load(Ordering::Acquire));
                self.note_depth(shard, depth);
                self.nudge_worker(shard);
            }
            BackpressurePolicy::DropOldest => {
                for event in run {
                    self.enqueue(shard, event);
                }
            }
        }
    }

    /// Attributes each shard's not-yet-published drop count to its
    /// synthetic `<dropped>` context. Run on snapshot paths (after the
    /// drain barrier), so the profile itself shows where `DropOldest`
    /// overload discarded events. Publication is serialized by a mutex so
    /// that when any caller returns, every delta visible at its entry has
    /// been *applied* — a claim-then-apply race would let a concurrent
    /// snapshot fold the shards between the claim and the apply and
    /// return a tree missing telemetry its own counters report.
    fn publish_drops(&self) {
        let _guard = self.drop_publish.lock().unwrap_or_else(|e| e.into_inner());
        for (idx, q) in self.queues.iter().enumerate() {
            let dropped = q.dropped.load(Ordering::Acquire);
            let published = q.dropped_published.load(Ordering::Relaxed);
            if dropped > published {
                self.inner.apply_dropped(idx, dropped - published);
                q.dropped_published.store(dropped, Ordering::Relaxed);
            }
            let victims: Vec<CallPath> = {
                let mut ring = q.victims.lock().unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *ring)
            };
            if !victims.is_empty() {
                self.inner
                    .apply_dropped_samples(idx, &victims, DROP_SAMPLE_STRIDE);
            }
            let poisoned = q.poisoned.load(Ordering::Acquire);
            let published = q.poisoned_published.load(Ordering::Relaxed);
            if poisoned > published {
                self.inner.apply_poisoned(idx, poisoned - published);
                q.poisoned_published.store(poisoned, Ordering::Relaxed);
            }
        }
    }

    /// Discards the correlation state an evicted message leaves behind:
    /// a dropped launch unbinds its enqueue-time route (and any shard
    /// binding, had a duplicate already been applied), a dropped bucket
    /// unbinds the correlations of its *terminal* records (nothing else
    /// will ever retire them; later records for those correlations — if
    /// any survive — fall to the orphan context, the documented drop
    /// semantics). Sampling records are non-terminal and keep their
    /// correlation live for the kernel record behind them.
    fn discard_bindings_of(&self, event: &Event) {
        match event {
            Event::Launch { origin, .. } => {
                if let Some(corr) = origin.correlation {
                    self.inner.discard_correlation(corr.0);
                }
            }
            Event::Activities(batch) => {
                for activity in batch {
                    if !matches!(activity.kind, ActivityKind::PcSampling { .. }) {
                        self.inner.discard_correlation(activity.correlation_id.0);
                    }
                }
            }
            Event::Batch(events) => {
                // A flushed producer batch carries launches whose routes
                // were directory-bound at flush time — those bindings die
                // with the eviction.
                for event in events {
                    if let ProducerEvent::Launch { origin, .. } = event {
                        if let Some(corr) = origin.correlation {
                            self.inner.discard_correlation(corr.0);
                        }
                    }
                }
            }
            Event::Sample { .. } | Event::Epoch => {}
        }
    }

    /// Waits until every message enqueued before this call has been
    /// retired. Returns immediately when the pipeline is already drained.
    fn drain(&self) {
        let targets: Vec<u64> = self
            .queues
            .iter()
            .map(|q| q.enqueued.load(Ordering::Acquire))
            .collect();
        let mut waited = false;
        for (idx, &target) in targets.iter().enumerate() {
            if self.queues[idx].applied.load(Ordering::Acquire) >= target {
                continue;
            }
            waited = true;
            self.drain_waiters.fetch_add(1, Ordering::AcqRel);
            let mut guard = self.drain_mutex.lock().unwrap_or_else(|e| e.into_inner());
            while self.queues[idx].applied.load(Ordering::Acquire) < target {
                // The timeout is a safety net against a nudge lost to the
                // parked-flag race; progress normally wakes us promptly.
                let (g, _) = self
                    .drain_cv
                    .wait_timeout(guard, Duration::from_millis(1))
                    .unwrap_or_else(|e| e.into_inner());
                guard = g;
            }
            drop(guard);
            self.drain_waiters.fetch_sub(1, Ordering::AcqRel);
        }
        if waited {
            self.drain_waits.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(journal) = &self.journal {
            if waited {
                journal.record(JournalSeverity::Info, journal_sites::PIPELINE_DRAIN, &[]);
            }
            // The barrier just proved a clean window: every message
            // enqueued before it has retired, so an open drop storm ends
            // here — the deterministic anchor for storm extents.
            if self.in_drop_storm.swap(false, Ordering::AcqRel) {
                let dropped = self.storm_dropped.swap(0, Ordering::AcqRel);
                journal.record(
                    JournalSeverity::Warn,
                    journal_sites::DROP_STORM_END,
                    &[("dropped", &dropped.to_string())],
                );
            }
        }
    }

    /// The attribution loop: drain owned shards, coalescing adjacent
    /// activity buckets under one shard-lock acquisition; park when idle.
    fn worker_loop(&self, worker: usize) {
        let owned: Vec<usize> = (0..self.queues.len())
            .filter(|idx| self.worker_for(*idx) == worker)
            .collect();
        let telemetry = self
            .telemetry
            .as_ref()
            .map(|t| WorkerTelemetry::register(t, worker));
        loop {
            if self.paused.load(Ordering::Acquire) && !self.shutdown.load(Ordering::Acquire) {
                self.paused_workers.fetch_add(1, Ordering::AcqRel);
                while self.paused.load(Ordering::Acquire) && !self.shutdown.load(Ordering::Acquire)
                {
                    self.park_timed(worker, || false, telemetry.as_ref());
                }
                self.paused_workers.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            let busy_start = telemetry.as_ref().map(|t| t.pipeline.now_ns());
            let mut applied = 0u64;
            for &idx in &owned {
                applied += self.drain_shard(idx);
            }
            if applied > 0 {
                self.worker_batches.fetch_add(1, Ordering::Relaxed);
                if let (Some(t), Some(start)) = (&telemetry, busy_start) {
                    let end = t.pipeline.now_ns();
                    t.busy_ns.add(end.saturating_sub(start));
                    t.batch_size.record(applied);
                    // One self-interval per productive pass, on this
                    // worker's own self-timeline stream.
                    self.inner.record_self_interval(
                        TrackKey::SELF_STREAM_WORKER + worker as u32,
                        start,
                        end,
                        t.pipeline.worker_sym,
                    );
                }
                continue;
            }
            if self.shutdown.load(Ordering::Acquire)
                && owned.iter().all(|&idx| self.depth(idx) == 0)
            {
                return;
            }
            let has_work = || owned.iter().any(|&idx| self.depth(idx) > 0);
            self.park_timed(worker, has_work, telemetry.as_ref());
        }
    }

    /// [`park`](Self::park), charging the wait to the worker's
    /// parked-time counter when telemetry is on.
    fn park_timed(
        &self,
        worker: usize,
        has_work: impl Fn() -> bool,
        telemetry: Option<&WorkerTelemetry>,
    ) {
        let start = telemetry.map(|t| t.pipeline.now_ns());
        self.park(worker, has_work);
        if let (Some(t), Some(start)) = (telemetry, start) {
            t.parked_ns.add(t.pipeline.now_ns().saturating_sub(start));
        }
    }

    /// Retires up to [`COALESCE`] messages from shard `idx`. Runs of
    /// consecutive activity buckets — including buckets from *different*
    /// flushes — are applied under one shard-lock acquisition
    /// ([`ShardedSink::apply_activity_buckets`]), which amortizes the
    /// fold cost of a busy shard across flush boundaries while keeping
    /// one two-phase-prune batch per original bucket (so resident
    /// correlation state never grows with the worker's backlog).
    fn drain_shard(&self, idx: usize) -> u64 {
        if self.is_quarantined(idx) {
            return self.drain_quarantined_shard(idx);
        }
        let q = &self.queues[idx];
        let mut messages = 0u64;
        let mut events = 0u64;
        let mut run: Vec<Vec<Activity>> = Vec::new();
        let mut run_records = 0usize;
        // Event counts are published *before* each retirement so counter
        // reads behind a drain barrier are exact, not lagging the pass.
        // Every apply below runs behind `apply_isolated`'s fault
        // boundary: a panicking apply quarantines the shard, its
        // message's events join the `<poisoned>` tally, and the pass
        // keeps retiring — so barriers never hang on a poisoned shard.
        let flush_run = |run: &mut Vec<Vec<Activity>>, run_records: &mut usize| {
            if !run.is_empty() {
                if self.apply_isolated(idx, || self.inner.apply_activity_buckets(idx, run)) {
                    self.inner.note_peak();
                    self.worker_events
                        .fetch_add(*run_records as u64, Ordering::Relaxed);
                } else {
                    // The whole coalesced run is poisoned; its terminal
                    // records' correlation state dies with it (nothing
                    // will ever retire it).
                    self.note_poisoned(idx, *run_records as u64);
                    for bucket in run.iter() {
                        for activity in bucket {
                            if !matches!(activity.kind, ActivityKind::PcSampling { .. }) {
                                self.inner.discard_correlation(activity.correlation_id.0);
                            }
                        }
                    }
                }
                self.retire(idx, run.len() as u64);
                run.clear();
                *run_records = 0;
            }
        };
        while messages < COALESCE as u64 {
            let Ok(event) = q.rx.try_recv() else { break };
            messages += 1;
            events += event.weight();
            // A coalesced activity run is flushed before any non-activity
            // message, preserving per-shard event order.
            if !matches!(event, Event::Activities(_)) {
                flush_run(&mut run, &mut run_records);
            }
            if self.is_quarantined(idx) {
                // The flush above (or an earlier message) quarantined the
                // shard mid-pass: everything still in hand is poisoned.
                self.poison_message(idx, &event);
                self.retire(idx, 1);
                continue;
            }
            match event {
                Event::Launch { origin, path, api } => {
                    if self
                        .apply_isolated(idx, || self.inner.apply_launch(idx, &origin, &path, api))
                    {
                        self.worker_events.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.note_poisoned(idx, 1);
                        if let Some(corr) = origin.correlation {
                            self.inner.discard_correlation(corr.0);
                        }
                    }
                    self.retire(idx, 1);
                }
                Event::Activities(batch) => {
                    run_records += batch.len();
                    run.push(batch);
                    if run_records >= COALESCE_RECORDS {
                        flush_run(&mut run, &mut run_records);
                    }
                }
                Event::Sample {
                    path,
                    metric,
                    value,
                } => {
                    if self.apply_isolated(idx, || {
                        self.inner.apply_cpu_sample(idx, &path, metric, value)
                    }) {
                        self.worker_events.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.note_poisoned(idx, 1);
                    }
                    self.retire(idx, 1);
                }
                Event::Batch(batch) => {
                    if self.apply_isolated(idx, || self.inner.apply_producer_batch(idx, &batch)) {
                        self.worker_events
                            .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    } else {
                        self.note_poisoned(idx, batch.len() as u64);
                        for event in &batch {
                            if let ProducerEvent::Launch { origin, .. } = event {
                                if let Some(corr) = origin.correlation {
                                    self.inner.discard_correlation(corr.0);
                                }
                            }
                        }
                    }
                    self.retire(idx, 1);
                }
                Event::Epoch => {
                    let _ = self.apply_isolated(idx, || self.inner.epoch_complete_shard(idx));
                    self.retire(idx, 1);
                }
            }
        }
        flush_run(&mut run, &mut run_records);
        // Settle epoch markers displaced from this queue by DropOldest
        // eviction (see `enqueue`): one application covers any number of
        // them, since back-to-back epochs are a no-op after the first.
        if q.pending_epochs.swap(0, Ordering::Acquire) > 0 {
            let _ = self.apply_isolated(idx, || self.inner.epoch_complete_shard(idx));
        }
        events
    }

    fn park(&self, worker: usize, has_work: impl Fn() -> bool) {
        let parker = &self.parkers[worker];
        let guard = parker.mutex.lock().unwrap_or_else(|e| e.into_inner());
        parker.parked.store(true, Ordering::Release);
        // Close the missed-nudge window: anything enqueued before the
        // flag went up may have skipped the notify.
        if !has_work() && !self.shutdown.load(Ordering::Acquire) {
            let _ = parker
                .cv
                .wait_timeout(guard, PARK_TIMEOUT)
                .unwrap_or_else(|e| e.into_inner());
        }
        parker.parked.store(false, Ordering::Release);
    }
}

impl BatchDelivery for Shared {
    fn sharded(&self) -> &ShardedSink {
        &self.inner
    }

    fn deliver(&self, shard: usize, mut events: Vec<ProducerEvent>) {
        self.producer_batches.record(events.len() as u64);
        // One `Batch` message per `MESSAGE_GRAIN` events: the whole run
        // goes through the channel's single-notify batch push, while
        // keeping queue-message granularity bounded — `queue_capacity`
        // and `DropOldest` eviction stay meaningful even when
        // `launch_batch` is configured far above the grain.
        if events.len() <= MESSAGE_GRAIN {
            self.enqueue_run(shard, vec![Event::Batch(events)]);
            return;
        }
        // Chunk from the tail so every element is moved exactly once
        // (a head-first `split_off` would re-copy the remainder per
        // chunk — quadratic in the batch size).
        let mut run: Vec<Event> = Vec::with_capacity(events.len() / MESSAGE_GRAIN + 1);
        while events.len() > MESSAGE_GRAIN {
            let tail = events.split_off(events.len() - MESSAGE_GRAIN);
            run.push(Event::Batch(tail));
        }
        run.push(Event::Batch(events));
        run.reverse();
        self.enqueue_run(shard, run);
    }
}

/// The asynchronous [`EventSink`] (see the [module docs](self)): a
/// producer-side router over per-shard bounded queues plus an owned
/// attribution worker pool, wrapping the [`ShardedSink`] that holds the
/// actual profile state.
pub struct AsyncSink {
    shared: Arc<Shared>,
    /// Thread-local producer batching (`None` when
    /// [`PipelineConfig::launch_batch`] is 1: events enqueue as they
    /// happen, the pre-batching behaviour).
    batcher: Option<Batcher>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl AsyncSink {
    /// Spawns the worker pool over `inner`'s shards.
    pub fn new(inner: Arc<ShardedSink>, config: PipelineConfig) -> Arc<Self> {
        let shards = inner.shard_count();
        let workers = config.resolved_workers(shards);
        let telemetry = inner.telemetry().map(|pipeline| {
            let handle = pipeline.handle();
            handle
                .gauge(names::QUEUE_CAPACITY, &[])
                .set(config.queue_capacity as u64);
            SharedTelemetry {
                enqueued: handle.counter(names::EVENTS_ENQUEUED, &[]),
                dropped: handle.counter(names::EVENTS_DROPPED, &[]),
                poisoned: handle.counter(names::EVENTS_POISONED, &[]),
                worker_panics: handle.counter(names::WORKER_PANICS, &[]),
                max_depth: handle.gauge(names::MAX_QUEUE_DEPTH, &[]),
                queue_depth: (0..shards)
                    .map(|idx| {
                        let label = idx.to_string();
                        handle.histogram(names::QUEUE_DEPTH, &[("shard", label.as_str())])
                    })
                    .collect(),
                pipeline: Arc::clone(pipeline),
            }
        });
        let shared = Arc::new(Shared {
            telemetry,
            queues: (0..shards)
                .map(|_| {
                    let (tx, rx) = channel::bounded(config.queue_capacity);
                    ShardQueue {
                        tx,
                        rx,
                        enqueued: AtomicU64::new(0),
                        applied: AtomicU64::new(0),
                        pending_epochs: AtomicU64::new(0),
                        dropped: AtomicU64::new(0),
                        dropped_published: AtomicU64::new(0),
                        poisoned: AtomicU64::new(0),
                        poisoned_published: AtomicU64::new(0),
                        evicted_seen: AtomicU64::new(0),
                        victims: Mutex::new(Vec::new()),
                    }
                })
                .collect(),
            parkers: (0..workers).map(|_| Parker::new()).collect(),
            quarantined: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            failpoints: config.failpoints.clone(),
            policy: config.backpressure,
            shutdown: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            paused_workers: AtomicUsize::new(0),
            drain_mutex: Mutex::new(()),
            drain_cv: Condvar::new(),
            drain_waiters: AtomicUsize::new(0),
            drop_publish: Mutex::new(()),
            enqueued_events: AtomicU64::new(0),
            dropped_events: AtomicU64::new(0),
            poisoned_events: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            drain_waits: AtomicU64::new(0),
            worker_batches: AtomicU64::new(0),
            worker_events: AtomicU64::new(0),
            producer_batches: BatchCounters::default(),
            journal: inner.journal().cloned(),
            in_drop_storm: AtomicBool::new(false),
            storm_dropped: AtomicU64::new(0),
            inner,
        });
        let batcher = (config.launch_batch > 1).then(|| {
            Batcher::new(
                Arc::clone(&shared) as Arc<dyn BatchDelivery>,
                config.launch_batch,
            )
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dc-pipeline-{w}"))
                    .spawn(move || {
                        // Outer fault boundary: a panic that escapes the
                        // per-message catch inside the loop (a bug in the
                        // loop itself, a poisoned std lock) must not
                        // strand this worker's shards — drain barriers
                        // and `pause` count on every worker making
                        // progress. Restart until an orderly shutdown.
                        loop {
                            match catch_unwind(AssertUnwindSafe(|| shared.worker_loop(w))) {
                                Ok(()) => break,
                                Err(_) => {
                                    shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                                    if let Some(t) = &shared.telemetry {
                                        t.worker_panics.add(1);
                                    }
                                    if let Some(journal) = &shared.journal {
                                        journal.record(
                                            JournalSeverity::Error,
                                            journal_sites::WORKER_RESTART,
                                            &[("worker", &w.to_string())],
                                        );
                                    }
                                    // Pace restarts so a deterministic
                                    // loop-entry panic cannot busy-spin.
                                    std::thread::sleep(Duration::from_millis(1));
                                }
                            }
                        }
                    })
                    .expect("spawn pipeline worker")
            })
            .collect();
        Arc::new(AsyncSink {
            shared,
            batcher,
            workers,
            handles,
        })
    }

    /// Flushes every thread's pending producer batch into the queues
    /// (without waiting for attribution). No-op when batching is off.
    fn flush_producers(&self) {
        if let Some(batcher) = &self.batcher {
            batcher.flush_all();
        }
    }

    /// The wrapped synchronous sink holding the profile state.
    pub fn inner(&self) -> &Arc<ShardedSink> {
        &self.shared.inner
    }

    /// Worker threads attributing events.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Blocks until every event produced before this call has been
    /// attributed (or dropped), flushing thread-local producer batches
    /// first. All snapshot paths call this implicitly; it is public for
    /// tests and for explicit quiesce points.
    pub fn drain(&self) {
        self.flush_producers();
        self.shared.drain();
    }

    /// Parks the worker pool (and blocks until every worker is parked):
    /// queued events stay queued, producers keep enqueueing until the
    /// backpressure policy engages. Used by tests to make queue overflow
    /// deterministic and by operators to quiesce attribution around a
    /// measurement window. While paused, drain barriers — and therefore
    /// snapshots, `counters`, and `Block`-policy sends on a full queue —
    /// wait until [`resume`](Self::resume).
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::Release);
        for parker in &self.shared.parkers {
            parker.nudge();
        }
        while self.shared.paused_workers.load(Ordering::Acquire) < self.workers {
            std::thread::yield_now();
        }
        if let Some(journal) = &self.shared.journal {
            // Journaled after the rendezvous: the event marks the point
            // the pool was actually parked, not the request.
            journal.record(JournalSeverity::Info, journal_sites::PIPELINE_PAUSE, &[]);
        }
    }

    /// Resumes a [`pause`](Self::pause)d worker pool.
    pub fn resume(&self) {
        if let Some(journal) = &self.shared.journal {
            journal.record(JournalSeverity::Info, journal_sites::PIPELINE_RESUME, &[]);
        }
        self.shared.paused.store(false, Ordering::Release);
        for parker in &self.shared.parkers {
            parker.nudge();
        }
    }

    /// Indices of shards quarantined by caught worker panics. A
    /// quarantined shard's events flow to the synthetic `<poisoned>`
    /// context for the rest of the run; every other shard is unaffected.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.shared
            .quarantined
            .iter()
            .enumerate()
            .filter(|(_, flag)| flag.load(Ordering::Acquire))
            .map(|(idx, _)| idx)
            .collect()
    }
}

impl EventSink for AsyncSink {
    fn gpu_launch(&self, origin: &EventOrigin, path: &CallPath, api: ApiKind) {
        self.gpu_launch_owned(origin, path.clone(), api);
    }

    fn gpu_launch_owned(&self, origin: &EventOrigin, path: CallPath, api: ApiKind) {
        let idx = self.shared.inner.route(origin);
        if let Some(batcher) = &self.batcher {
            // Batched fast path: append to this thread's buffer; the
            // flush binds the whole batch's correlations in one striped
            // pass and pushes one message run per shard.
            batcher.push(
                idx,
                ProducerEvent::Launch {
                    origin: *origin,
                    path,
                    api,
                },
            );
            return;
        }
        if let Some(corr) = origin.correlation {
            // Bind the route before the event is visible anywhere, so
            // activity records arriving while this launch is queued
            // route to the same shard (module docs: ordering).
            self.shared.inner.bind_route(corr.0, idx);
        }
        self.shared.enqueue(
            idx,
            Event::Launch {
                origin: *origin,
                path,
                api,
            },
        );
    }

    fn activity_batch(&self, batch: &[Activity]) {
        self.activity_batch_owned(batch.to_vec());
    }

    fn activity_batch_owned(&self, batch: Vec<Activity>) {
        if batch.is_empty() {
            return;
        }
        if let Some(batcher) = &self.batcher {
            // Activity records resolve through launches' correlations, so
            // every buffered launch anywhere must be bound (and ahead in
            // its shard's FIFO) before these records route.
            batcher.flush_all();
        }
        // Route every record once, then move records into buckets — no
        // activity (or PC-sample payload) is ever cloned on this path.
        for (idx, bucket) in self.shared.inner.partition_activities(batch) {
            self.shared.enqueue(idx, Event::Activities(bucket));
        }
    }

    fn cpu_sample(&self, origin: &EventOrigin, path: &CallPath, metric: MetricKind, value: f64) {
        self.cpu_sample_owned(origin, path.clone(), metric, value);
    }

    fn cpu_sample_owned(
        &self,
        origin: &EventOrigin,
        path: CallPath,
        metric: MetricKind,
        value: f64,
    ) {
        let idx = self.shared.inner.route(origin);
        if let Some(batcher) = &self.batcher {
            batcher.push(
                idx,
                ProducerEvent::Sample {
                    path,
                    metric,
                    value,
                },
            );
            return;
        }
        self.shared.enqueue(
            idx,
            Event::Sample {
                path,
                metric,
                value,
            },
        );
    }

    fn epoch_complete(&self) {
        // First barrier: everything produced before this flush boundary
        // is flushed out of thread-local batches and applied — and
        // peak-samples its batch-boundary states — before any shard sees
        // the boundary itself, exactly as in synchronous mode (where
        // `activity_batch` returns before `epoch_complete` starts
        // trimming).
        self.flush_producers();
        if let Some(batcher) = &self.batcher {
            // Epochs are quiescent points: shed the flush-window capacity
            // thread-local buffers retain, like the shard/directory trims
            // below.
            batcher.trim();
        }
        self.shared.drain();
        // Then propagate the boundary through every shard queue in event
        // order and wait for the trims to land.
        for idx in 0..self.shared.inner.shard_count() {
            self.shared.enqueue(idx, Event::Epoch);
        }
        self.shared.drain();
        self.shared.inner.trim_directory();
        // The barrier-anchored journal event, recorded *after* the second
        // drain: both ingestion modes journal one epoch event per flush
        // boundary with identical ordering relative to applied events
        // (sync mode records it in `ShardedSink::epoch_complete`, which
        // the async pipeline deliberately bypasses).
        if let Some(journal) = &self.shared.journal {
            journal.record(JournalSeverity::Info, journal_sites::PIPELINE_EPOCH, &[]);
        }
    }

    fn snapshot(&self) -> CallingContextTree {
        self.flush_producers();
        self.shared.drain();
        self.shared.publish_drops();
        self.shared.inner.snapshot()
    }

    fn with_snapshot(&self, f: &mut dyn FnMut(&CallingContextTree)) {
        self.flush_producers();
        self.shared.drain();
        self.shared.publish_drops();
        self.shared.inner.with_snapshot(f);
    }

    fn finish_snapshot(&self) -> CallingContextTree {
        self.flush_producers();
        self.shared.drain();
        self.shared.publish_drops();
        self.shared.inner.finish_snapshot()
    }

    fn timeline_snapshot(&self) -> Option<deepcontext_timeline::TimelineSnapshot> {
        // The same drain barrier as every snapshot path: everything
        // produced before this call is attributed — and its intervals
        // recorded — before the rings are read, so asynchronous-mode
        // timelines are deterministic at every flush.
        self.flush_producers();
        self.shared.drain();
        self.shared.publish_drops();
        self.shared.inner.timeline_snapshot()
    }

    fn counters(&self) -> SinkCounters {
        // Flush producer batches and drain first so counter reads are as
        // deterministic as in synchronous mode (high-water marks are
        // unaffected).
        self.flush_producers();
        self.shared.drain();
        SinkCounters {
            enqueued_events: self.shared.enqueued_events.load(Ordering::Relaxed),
            dropped_events: self.shared.dropped_events.load(Ordering::Relaxed),
            poisoned_events: self.shared.poisoned_events.load(Ordering::Relaxed),
            worker_panics: self.shared.worker_panics.load(Ordering::Relaxed),
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
            drain_waits: self.shared.drain_waits.load(Ordering::Relaxed),
            worker_batches: self.shared.worker_batches.load(Ordering::Relaxed),
            worker_events: self.shared.worker_events.load(Ordering::Relaxed),
            producer_flushes: self.shared.producer_batches.flushes.load(Ordering::Relaxed),
            batched_events: self.shared.producer_batches.events.load(Ordering::Relaxed),
            ..self.shared.inner.counters()
        }
    }

    fn approx_bytes(&self) -> usize {
        // Queued state is estimated in *events*, not messages — an
        // `Event::Batch` or activity-bucket message carries up to
        // `MESSAGE_GRAIN`/bucket-size owned events, so counting messages
        // would under-report a batched backlog by that factor. Weight
        // accounting: accepted − applied − dropped = still queued.
        let enqueued = self.shared.enqueued_events.load(Ordering::Relaxed);
        let applied = self.shared.worker_events.load(Ordering::Relaxed);
        let dropped = self.shared.dropped_events.load(Ordering::Relaxed);
        let queued = enqueued.saturating_sub(applied).saturating_sub(dropped);
        // Each queued event is an owned copy awaiting attribution;
        // estimate one cache line each plus the channel shells.
        // Thread-local producer buffers are ingestion state too.
        self.shared.inner.approx_bytes()
            + queued as usize * (std::mem::size_of::<Event>() + 64)
            + self.shared.queues.len() * std::mem::size_of::<ShardQueue>()
            + self.batcher.as_ref().map_or(0, Batcher::approx_bytes)
    }
}

impl Drop for AsyncSink {
    fn drop(&mut self) {
        // Un-pause and wake the pool *before* flushing producers: a
        // flush's Block-policy send on a full queue can only complete if
        // workers are draining, so flushing first would deadlock a
        // paused sink dropped with a full queue.
        self.shared.paused.store(false, Ordering::Release);
        for parker in &self.shared.parkers {
            parker.nudge();
        }
        // Hand any still-buffered producer events to the workers before
        // asking them to wind down (they drain their queues on exit).
        self.flush_producers();
        self.shared.shutdown.store(true, Ordering::Release);
        for parker in &self.shared.parkers {
            // Unconditional wake: a worker may be between the parked-flag
            // store and the wait.
            let _guard = parker.mutex.lock().unwrap_or_else(|e| e.into_inner());
            parker.cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for AsyncSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncSink")
            .field("workers", &self.workers)
            .field("shards", &self.shared.inner.shard_count())
            .field("policy", &self.shared.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{Frame, Interner, TimeNs};
    use sim_gpu::{ActivityKind, CorrelationId, DeviceId, StreamId};

    /// Joins a test thread, surfacing the panic payload in the failure
    /// message instead of double-panicking on an opaque `Box<dyn Any>`.
    fn join_reporting<T>(handle: std::thread::JoinHandle<T>, what: &str) -> T {
        handle.join().unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            panic!("{what} panicked: {msg}");
        })
    }

    #[test]
    fn drop_oldest_defers_displaced_epoch_markers() {
        // A flush-boundary marker evicted by DropOldest must still take
        // effect (deferred to the worker's next pass), or the shard's
        // deferred correlations would never retire for that boundary.
        let interner = Interner::new();
        let inner = ShardedSink::new(Arc::clone(&interner), 1);
        let sink = AsyncSink::new(
            Arc::clone(&inner),
            PipelineConfig {
                workers: 1,
                queue_capacity: 2,
                backpressure: BackpressurePolicy::DropOldest,
                launch_batch: 1,
                ..PipelineConfig::default()
            },
        );
        // Seed: a launch plus its terminal activity — after the bucket's
        // end_batch the correlation is deferred but still live; only the
        // next flush boundary retires it.
        let origin = EventOrigin {
            tid: Some(1),
            stream: Some(StreamId(0)),
            correlation: Some(CorrelationId(7)),
        };
        let mut path = CallPath::new();
        path.push(Frame::gpu_kernel("k", "m.so", 0x1, &interner));
        sink.gpu_launch(&origin, &path, ApiKind::LaunchKernel);
        sink.activity_batch(&[Activity {
            correlation_id: CorrelationId(7),
            device: DeviceId(0),
            kind: ActivityKind::Malloc {
                bytes: 64,
                at: TimeNs(1),
            },
        }]);
        sink.drain();
        assert_eq!(inner.correlation_entries(), 1, "deferred, not retired");

        // Park the worker, plant an epoch marker, then overflow the
        // 2-slot queue so eviction displaces the marker.
        sink.pause();
        sink.shared.enqueue(0, Event::Epoch);
        let sample_origin = EventOrigin {
            tid: Some(1),
            ..EventOrigin::default()
        };
        for _ in 0..6 {
            sink.cpu_sample(&sample_origin, &path, MetricKind::CpuTime, 1.0);
        }
        sink.resume();
        sink.drain();
        // The displaced boundary settles at the end of the worker's next
        // pass (after the barrier), so poll briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while inner.correlation_entries() != 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(
            inner.correlation_entries(),
            0,
            "displaced epoch marker must still retire the correlation"
        );
        assert!(
            sink.counters().dropped_events > 0,
            "data messages were evicted"
        );
    }

    #[test]
    fn dropping_a_paused_sink_with_full_queue_and_buffered_batch_terminates() {
        // Drop must un-pause and wake the pool *before* flushing
        // thread-local batches: the flush's Block-policy send on a full
        // queue can only complete once workers drain, so the old order
        // (flush, then un-pause) deadlocked this exact shape.
        let interner = Interner::new();
        let inner = ShardedSink::new(Arc::clone(&interner), 1);
        let sink = AsyncSink::new(
            Arc::clone(&inner),
            PipelineConfig {
                workers: 1,
                queue_capacity: 1,
                backpressure: BackpressurePolicy::Block,
                launch_batch: 64,
                ..PipelineConfig::default()
            },
        );
        sink.pause();
        let mut path = CallPath::new();
        path.push(Frame::gpu_kernel("k", "m.so", 0x1, &interner));
        // Fill the 1-slot queue (activity buckets enqueue directly)...
        sink.activity_batch(&[Activity {
            correlation_id: CorrelationId(1),
            device: DeviceId(0),
            kind: ActivityKind::Malloc {
                bytes: 64,
                at: TimeNs(1),
            },
        }]);
        // ...and leave one sample buffered in the thread-local batch.
        let origin = EventOrigin {
            tid: Some(1),
            ..EventOrigin::default()
        };
        sink.cpu_sample(&origin, &path, MetricKind::CpuTime, 1.0);

        let dropper = std::thread::spawn(move || drop(sink));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !dropper.is_finished() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(
            dropper.is_finished(),
            "dropping a paused sink with a full queue deadlocked"
        );
        join_reporting(dropper, "dropper");
        // Nothing was lost: the queued bucket and the buffered sample
        // were both attributed during shutdown.
        let cct = inner.snapshot();
        assert_eq!(cct.total(MetricKind::CpuTime), 1.0);
        assert_eq!(cct.total(MetricKind::GpuAllocBytes), 64.0);
    }

    #[test]
    fn drop_oldest_does_not_leak_correlation_state() {
        // Evicted launches must unbind their enqueue-time directory
        // entry, and evicted terminal activity records must discard
        // their correlation's shard binding — otherwise sustained
        // overload grows the directory and correlation maps without
        // bound in exactly the mode meant to bound memory.
        let interner = Interner::new();
        let inner = ShardedSink::new(Arc::clone(&interner), 1);
        let sink = AsyncSink::new(
            Arc::clone(&inner),
            PipelineConfig {
                workers: 1,
                queue_capacity: 2,
                backpressure: BackpressurePolicy::DropOldest,
                launch_batch: 1,
                ..PipelineConfig::default()
            },
        );
        let mut path = CallPath::new();
        path.push(Frame::gpu_kernel("k", "m.so", 0x1, &interner));

        // Phase 1: flood launches into a parked pipeline — most are
        // evicted and must take their directory bindings with them.
        sink.pause();
        for corr in 1..=100u64 {
            let origin = EventOrigin {
                tid: Some(1),
                stream: Some(StreamId(0)),
                correlation: Some(CorrelationId(corr)),
            };
            sink.gpu_launch(&origin, &path, ApiKind::LaunchKernel);
        }
        sink.resume();
        sink.drain();
        assert!(
            inner.directory_entries() <= 2 + 1,
            "evicted launches leaked directory entries: {}",
            inner.directory_entries()
        );

        // Phase 2: the surviving launches' terminal records are evicted
        // too; their shard bindings must be discarded, and an epoch
        // retires whatever was attributed normally.
        sink.pause();
        for corr in 1..=100u64 {
            sink.activity_batch(&[Activity {
                correlation_id: CorrelationId(corr),
                device: DeviceId(0),
                kind: ActivityKind::Malloc {
                    bytes: 64,
                    at: TimeNs(1),
                },
            }]);
        }
        sink.resume();
        sink.drain();
        sink.epoch_complete();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while (inner.correlation_entries() != 0 || inner.directory_entries() != 0)
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        assert_eq!(inner.correlation_entries(), 0, "shard bindings leaked");
        assert_eq!(inner.directory_entries(), 0, "directory entries leaked");
        assert!(sink.counters().dropped_events > 0);
    }

    /// A thread id whose CPU-sample origin routes to `shard` on `inner`.
    fn tid_routing_to(inner: &ShardedSink, shard: usize) -> u64 {
        (1..10_000u64)
            .find(|t| {
                inner.route(&EventOrigin {
                    tid: Some(*t),
                    ..EventOrigin::default()
                }) == shard
            })
            .expect("some tid routes to every shard")
    }

    #[test]
    fn worker_panic_quarantines_the_shard_and_barriers_still_complete() {
        // An injected panic in the apply path must quarantine only the
        // offending shard: drain / pause / resume / epoch / snapshot all
        // return, the healthy shard's metrics are intact, and every
        // event is accounted (attributed + <poisoned> + dropped ==
        // enqueued).
        let interner = Interner::new();
        let inner = ShardedSink::new(Arc::clone(&interner), 2);
        let sink = AsyncSink::new(
            Arc::clone(&inner),
            PipelineConfig {
                workers: 1,
                launch_batch: 1,
                failpoints: Failpoints::parse("worker_panic@shard0").expect("valid spec"),
                ..PipelineConfig::default()
            },
        );
        let mut path = CallPath::new();
        path.push(Frame::gpu_kernel("k", "m.so", 0x1, &interner));
        let poisoned_tid = tid_routing_to(&inner, 0);
        let healthy_tid = tid_routing_to(&inner, 1);
        for _ in 0..10 {
            for tid in [poisoned_tid, healthy_tid] {
                let origin = EventOrigin {
                    tid: Some(tid),
                    ..EventOrigin::default()
                };
                sink.cpu_sample(&origin, &path, MetricKind::CpuTime, 1.0);
            }
        }
        // Every barrier completes despite the quarantined shard.
        sink.drain();
        sink.pause();
        sink.resume();
        sink.epoch_complete();
        let cct = sink.snapshot();
        let counters = sink.counters();
        assert_eq!(sink.quarantined_shards(), vec![0]);
        assert!(counters.worker_panics >= 1);
        assert_eq!(
            counters.worker_events + counters.poisoned_events + counters.dropped_events,
            counters.enqueued_events,
            "event conservation: {counters:?}"
        );
        // The healthy shard attributed normally; the quarantined shard's
        // events surface at the synthetic <poisoned> context.
        assert_eq!(cct.total(MetricKind::CpuTime), 10.0);
        assert_eq!(
            cct.total(MetricKind::PoisonedEvents),
            counters.poisoned_events as f64
        );
        assert_eq!(counters.poisoned_events, 10);
    }

    #[test]
    fn drop_oldest_samples_victim_contexts_under_dropped() {
        // Beyond the exact <dropped> total, eviction samples every K-th
        // victim's context into a ring so the profile reports *which*
        // contexts the overload fell on, scaled by the stride.
        let interner = Interner::new();
        let inner = ShardedSink::new(Arc::clone(&interner), 1);
        let sink = AsyncSink::new(
            Arc::clone(&inner),
            PipelineConfig {
                workers: 1,
                queue_capacity: 2,
                backpressure: BackpressurePolicy::DropOldest,
                launch_batch: 1,
                ..PipelineConfig::default()
            },
        );
        let mut path = CallPath::new();
        path.push(Frame::gpu_kernel("hot", "m.so", 0x1, &interner));
        let origin = EventOrigin {
            tid: Some(1),
            ..EventOrigin::default()
        };
        sink.pause();
        for _ in 0..200 {
            sink.cpu_sample(&origin, &path, MetricKind::CpuTime, 1.0);
        }
        sink.resume();
        sink.drain();
        let cct = sink.snapshot();
        let counters = sink.counters();
        assert!(counters.dropped_events >= 100, "flood must overflow");
        // The root-ward total stays exact: victim estimates attribute
        // exclusively and never double-count it.
        assert_eq!(
            cct.total(MetricKind::DroppedEvents),
            counters.dropped_events as f64
        );
        // The sampled victim context sits under <dropped> with a
        // stride-scaled estimate.
        let dropped_frame = Frame::operator("<dropped>", &interner);
        let dropped_node = cct
            .dfs()
            .find(|&n| cct.node(n).frame() == &dropped_frame)
            .expect("<dropped> context exists");
        let victim = cct
            .node(dropped_node)
            .children()
            .iter()
            .copied()
            .find(|&child| cct.metric(child, MetricKind::DroppedEvents).is_some())
            .expect("sampled victim context under <dropped>");
        let estimate = cct.metric(victim, MetricKind::DroppedEvents).unwrap().sum;
        assert!(
            estimate >= DROP_SAMPLE_STRIDE as f64,
            "victim estimate is stride-scaled, got {estimate}"
        );
    }
}
