//! Error type for core operations.

use std::fmt;

/// Errors produced while loading or storing profile databases.
#[derive(Debug)]
pub enum CoreError {
    /// A record in a stored profile failed to parse.
    Parse(String),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl CoreError {
    pub(crate) fn parse(msg: String) -> Self {
        CoreError::Parse(msg)
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(msg) => write!(f, "invalid profile record: {msg}"),
            CoreError::Io(e) => write!(f, "profile i/o failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Io(e) => Some(e),
            CoreError::Parse(_) => None,
        }
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CoreError::parse("bad tag".into());
        let msg = e.to_string();
        assert!(msg.contains("bad tag"));
        assert!(msg.starts_with("invalid"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: CoreError = io.into();
        assert!(e.source().is_some());
    }
}
