//! The DeepContext profiler (paper §4.2).
//!
//! The profiler registers callbacks through DLMonitor, collects GPU and
//! CPU metrics, attributes them to unified call paths, and aggregates
//! them **online** into a [`CallingContextTree`] — the design that keeps
//! DeepContext's profiles small and iteration-count-independent
//! (Figure 6c/6d), in contrast to trace-based profilers.
//!
//! Collection paths:
//!
//! * **GPU kernel launches** — at each `DLMONITOR_GPU` launch callback the
//!   profiler emits the correlation id, retrieves the unified call path,
//!   and associates the id with the CCT node; asynchronous activity
//!   records later resolve through the correlation map and add
//!   `GpuTime` / occupancy / launch-shape metrics;
//! * **Instruction samples** — PC-sampling records extend the kernel's
//!   call path with [`Frame::Instruction`] nodes carrying stall-reason
//!   metrics (fine-grained analysis, §6.7);
//! * **CPU samples** — `CPU_TIME` / `REAL_TIME` interval samples and
//!   perf-style hardware-counter overflow samples attribute to the
//!   sampled thread's unified call path (§6.4).
//!
//! All of those paths terminate in an [`EventSink`]. The default sink is
//! the [`ShardedSink`]: per-thread/per-stream [`CctShard`]s (private tree
//! plus correlation map behind independent locks) that fold into one
//! master tree on [`Profiler::with_cct`] / [`Profiler::finish`]. The
//! fold is cached and tracked by per-shard dirty generations, so a warm
//! snapshot re-folds only the shards that changed — and concurrent
//! producers never serialize on a global profile lock. See the [`sink`]
//! module docs for the routing rules and the cache mechanics.
//!
//! [`CctShard`]: deepcontext_core::CctShard
//! [`Frame::Instruction`]: deepcontext_core::Frame
//! [`CallingContextTree`]: deepcontext_core::CallingContextTree

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use deepcontext_core::{CallingContextTree, MetricKind, ProfileDb, ProfileMeta, TimeNs};
use dlmonitor::{CallPathSources, DlEvent, DlMonitor, Domain, EventOrigin, RegistrationId};
use sim_gpu::{ApiKind, CallbackSite, GpuRuntime, SamplingConfig};
use sim_runtime::{RuntimeEnv, SampleKind, SamplerId};

pub mod sink;

pub use sink::{
    attribute_activity_metrics, default_directory_map, default_ingestion_mode,
    default_journal_config, default_journal_enabled, default_launch_batch,
    default_telemetry_config, default_telemetry_enabled, default_timeline_config,
    default_timeline_enabled, journal_sites, AsyncSink, BackpressurePolicy, BatchingSink,
    DirectoryMap, DirectoryMapKind, EventSink, Failpoints, HealthReport, HealthThresholds,
    IngestionMode, Journal, JournalConfig, JournalSeverity, PipelineConfig, PipelineTelemetry,
    ShardedSink, SinkCounters, Supervisor, SupervisorConfig, SupervisorSink, SupervisorState,
    Telemetry, TelemetryConfig, TelemetrySnapshot, TimelineConfig, TimelineSnapshot, TimelineStats,
    DEFAULT_LAUNCH_BATCH,
};

/// The default ingestion shard count, honouring the
/// `DEEPCONTEXT_TEST_SHARDS` environment override CI uses to run the
/// whole suite under both the historical single-lock layout (`=1`) and
/// the sharded layout (`=16`). Falls back to 16 when unset or invalid.
pub fn default_ingestion_shards() -> usize {
    std::env::var("DEEPCONTEXT_TEST_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(16)
}

/// Profiler configuration.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Which call-path sources to integrate (paper's "DeepContext" vs
    /// "DeepContext Native" configurations).
    pub sources: CallPathSources,
    /// Whether DLMonitor's call-path cache is enabled.
    pub cache_enabled: bool,
    /// Collect coarse GPU metrics (time, launch shapes, occupancy).
    pub gpu_metrics: bool,
    /// Collect fine-grained instruction samples.
    pub instruction_sampling: Option<SamplingConfig>,
    /// CPU_TIME sampling interval (None = off).
    pub cpu_time_interval: Option<TimeNs>,
    /// REAL_TIME sampling interval (None = off).
    pub real_time_interval: Option<TimeNs>,
    /// Hardware-counter overflow sampling period in events (None = off).
    pub hw_counter_period: Option<u64>,
    /// GPU activity buffer capacity before auto-flush.
    pub activity_buffer_capacity: usize,
    /// Number of ingestion shards (parallel CCT shards events are routed
    /// to before any lock is taken). `1` reproduces the historical
    /// single-lock pipeline.
    pub ingestion_shards: usize,
    /// Whether attribution runs inline on producers
    /// ([`IngestionMode::Sync`], the default) or on a bounded-channel
    /// worker pool ([`IngestionMode::Async`]) that takes correlation
    /// resolution, CCT mutation and metric folds off the monitored
    /// workload's critical path.
    pub ingestion_mode: IngestionMode,
    /// Ingestion-pipeline tuning. `launch_batch` (thread-local producer
    /// batching, `DEEPCONTEXT_LAUNCH_BATCH` env override) applies to
    /// **both** ingestion modes — in synchronous mode the sharded sink is
    /// wrapped in a [`BatchingSink`] when it is above 1; the worker
    /// count, queue capacity and backpressure policy apply to
    /// asynchronous mode only.
    pub pipeline: PipelineConfig,
    /// Whether snapshots are served from the incremental generation-
    /// tracked cache. Disabling trades warm `with_cct` latency for not
    /// holding a merged second copy of the profile — for memory-tight
    /// deployments.
    pub snapshot_cache: bool,
    /// Timeline recording: keep each kernel/memcpy record's
    /// `[start, end)` interval — tagged with its resolved CCT context —
    /// in bounded per-shard rings, for utilization / overlap / idle-gap
    /// analysis and Chrome-trace export ([`Profiler::timeline`]).
    /// Off by default (aggregate-only profiling pays nothing); the
    /// `DEEPCONTEXT_TIMELINE` environment override CI uses flips the
    /// default on.
    pub timeline: TimelineConfig,
    /// Self-telemetry: the profiler recording metrics about its own
    /// pipeline (queue depths, flush/fold latencies, drops, worker
    /// utilization — see [`Profiler::health_report`]) and, when the
    /// timeline is also on, its own execution as intervals on a reserved
    /// self-timeline track. Off by default; the `DEEPCONTEXT_TELEMETRY`
    /// environment override flips the default on.
    pub telemetry: TelemetryConfig,
    /// Health-driven graceful degradation: wrap the sink in a
    /// [`SupervisorSink`] whose `Healthy → Degraded → Bypass` state
    /// machine is fed one [`HealthReport`] window per
    /// [`Profiler::flush`]. `Degraded` switches ingestion to
    /// deterministic 1-in-N sampling (the stride is stamped into
    /// `ProfileMeta::extra` as `supervisor.sample_rate` for rescaling);
    /// `Bypass` turns the tap off while the workload runs untouched.
    /// `None` (the default) admits everything unconditionally. Observing
    /// health requires [`telemetry`](Self::telemetry) to be enabled —
    /// with telemetry off a supervised profiler simply never leaves
    /// `Healthy` on its own.
    pub supervisor: Option<SupervisorConfig>,
    /// Incident journal: a bounded ring of structured lifecycle events
    /// (supervisor transitions with their evidence, shard quarantines,
    /// drop storms, store retries, pause/resume/drain barriers,
    /// failpoint fires) kept alongside the profile and persisted with it
    /// ([`Profiler::journal`] for the live handle). Off by default —
    /// disabled, ingestion pays nothing; the `DEEPCONTEXT_JOURNAL`
    /// environment override flips the default on.
    pub journal: JournalConfig,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            sources: CallPathSources::all(),
            cache_enabled: true,
            gpu_metrics: true,
            instruction_sampling: None,
            cpu_time_interval: Some(TimeNs::from_us(100)),
            real_time_interval: None,
            hw_counter_period: None,
            activity_buffer_capacity: 4096,
            ingestion_shards: default_ingestion_shards(),
            ingestion_mode: default_ingestion_mode(),
            pipeline: PipelineConfig::default(),
            snapshot_cache: true,
            timeline: default_timeline_config(),
            telemetry: default_telemetry_config(),
            supervisor: None,
            journal: default_journal_config(),
        }
    }
}

impl ProfilerConfig {
    /// The paper's default "DeepContext" configuration: Python + framework
    /// call paths, no native unwinding.
    pub fn deepcontext() -> Self {
        ProfilerConfig {
            sources: CallPathSources::without_native(),
            ..Default::default()
        }
    }

    /// The paper's "DeepContext Native" configuration: full native
    /// unwinding included.
    pub fn deepcontext_native() -> Self {
        ProfilerConfig {
            sources: CallPathSources::all(),
            ..Default::default()
        }
    }
}

/// Profiler activity counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfilerStats {
    /// Kernel launches observed.
    pub launches: u64,
    /// Activity records attributed.
    pub activities: u64,
    /// CPU samples attributed.
    pub cpu_samples: u64,
    /// Instruction samples attributed.
    pub instruction_samples: u64,
    /// Activity records that fell back to the `<unattributed>` catch-all
    /// context because their correlation was pruned or never seen.
    pub orphans: u64,
    /// Peak profile memory (bytes) observed at flush points.
    pub peak_bytes: usize,
    /// Shard folds performed while refreshing CCT snapshots (cold
    /// snapshots fold every shard, warm ones only dirty shards).
    pub snapshot_merges: u64,
    /// Shards skipped by snapshot refreshes because they had not changed
    /// since the cached fold — proof the incremental snapshot cache is
    /// doing its job.
    pub shards_skipped: u64,
    /// Events accepted into the asynchronous pipeline's shard queues
    /// (zero in synchronous mode).
    pub enqueued_events: u64,
    /// Events discarded by the `DropOldest` backpressure policy (always
    /// zero under the default `Block` policy and in synchronous mode).
    pub dropped_events: u64,
    /// High-water mark of any one shard queue's depth, in messages.
    pub max_queue_depth: u64,
    /// Drain barriers (flush / snapshot / stats points) that found
    /// attribution still in flight and had to wait for workers.
    pub drain_waits: u64,
    /// Worker passes that applied at least one event; with
    /// [`worker_events`](Self::worker_events) this measures utilization
    /// (`worker_events / worker_batches` = mean events per wake-up).
    pub worker_batches: u64,
    /// Events applied by asynchronous pipeline workers.
    pub worker_events: u64,
    /// Thread-local producer-batch flushes delivered (zero when
    /// `launch_batch` is 1); `batched_events / producer_flushes` is the
    /// mean amortization per flush.
    pub producer_flushes: u64,
    /// Events that travelled through thread-local producer batches.
    pub batched_events: u64,
    /// Kernel/memcpy intervals recorded into timeline rings (zero when
    /// [`ProfilerConfig::timeline`] is off).
    pub timeline_intervals: u64,
    /// Timeline intervals evicted by ring overflow — when non-zero the
    /// timeline is a trailing window of the run, not the whole run.
    pub timeline_dropped: u64,
    /// Worker panics caught by the asynchronous pipeline's fault
    /// isolation (each one quarantined a shard). Zero on healthy runs
    /// and in synchronous mode.
    pub worker_panics: u64,
    /// Events accounted to the synthetic `<poisoned>` context after
    /// arriving at a quarantined shard.
    pub poisoned_events: u64,
}

struct Inner {
    monitor: Arc<DlMonitor>,
    sink: Arc<dyn EventSink>,
    launches: AtomicU64,
    cpu_samples: AtomicU64,
}

/// The DeepContext profiler.
///
/// Construction attaches every collection path; [`Profiler::finish`]
/// detaches them and yields the profile database.
pub struct Profiler {
    inner: Arc<Inner>,
    env: RuntimeEnv,
    gpu: Arc<GpuRuntime>,
    monitor_regs: Vec<RegistrationId>,
    sampler_ids: Vec<SamplerId>,
    /// Wall-clock attach time: the start of the run's window. Timeline
    /// snapshots and [`Profiler::finish`] bound idle analysis with it.
    started: TimeNs,
    /// The pipeline's self-telemetry instruments — set by
    /// [`Profiler::attach`] when `config.telemetry` is enabled (a
    /// caller-provided sink carries its own, so
    /// [`attach_with_sink`](Profiler::attach_with_sink) leaves this
    /// `None`).
    telemetry: Option<Arc<PipelineTelemetry>>,
    /// The degradation state machine — set by [`Profiler::attach`] when
    /// [`ProfilerConfig::supervisor`] is configured. [`Profiler::flush`]
    /// and [`Profiler::finish`] feed it health windows.
    supervisor: Option<Arc<Supervisor>>,
    /// The incident journal — set by [`Profiler::attach`] when
    /// [`ProfilerConfig::journal`] is enabled. Every pipeline layer
    /// appends to this one handle; [`Profiler::finish`] persists its
    /// snapshot into the profile.
    journal: Option<Arc<Journal>>,
}

impl Profiler {
    /// Attaches a profiler to a monitored process.
    ///
    /// `monitor` must already be attached to the framework(s) and GPU
    /// runtime (see [`DlMonitor::attach_framework`] /
    /// [`DlMonitor::attach_gpu`]).
    pub fn attach(
        config: ProfilerConfig,
        env: &RuntimeEnv,
        monitor: &Arc<DlMonitor>,
        gpu: &Arc<GpuRuntime>,
    ) -> Profiler {
        let sharded = ShardedSink::with_journal(
            monitor.interner(),
            config.ingestion_shards,
            config.snapshot_cache,
            &config.timeline,
            config.pipeline.directory_map,
            &config.telemetry,
            Failpoints::from_env(),
            &config.journal,
        );
        let telemetry = sharded.telemetry().cloned();
        let journal = sharded.journal().cloned();
        // Injected faults belong in the causal record next to the
        // symptoms they provoke: route every failpoint fire into the
        // journal. Latest-wins on the shared env registry, so the
        // observer always follows the current run.
        if let Some(journal) = &journal {
            let journal = Arc::clone(journal);
            sharded
                .failpoints()
                .observe_fires(Box::new(move |name, site| match site {
                    Some(at) => journal.record(
                        JournalSeverity::Error,
                        journal_sites::FAILPOINT_FIRE,
                        &[("name", name), ("at", &at.to_string())],
                    ),
                    None => journal.record(
                        JournalSeverity::Error,
                        journal_sites::FAILPOINT_FIRE,
                        &[("name", name)],
                    ),
                }));
        }
        let mut sink: Arc<dyn EventSink> = match config.ingestion_mode {
            // Producer batching amortizes routing/locking in synchronous
            // mode too; the bare sharded sink remains the launch_batch=1
            // degenerate case.
            IngestionMode::Sync if config.pipeline.launch_batch > 1 => {
                BatchingSink::new(sharded, config.pipeline.launch_batch)
            }
            IngestionMode::Sync => sharded,
            IngestionMode::Async => AsyncSink::new(sharded, config.pipeline.clone()),
        };
        // Admission control goes outermost so degraded-mode sampling is
        // decided before any batching or queueing effort is spent.
        let supervisor = config.supervisor.map(|sup_config| {
            let supervisor = Supervisor::with_journal(
                sup_config,
                telemetry.as_deref().map(|t| t.handle()),
                journal.clone(),
            );
            sink = SupervisorSink::new(Arc::clone(&sink), Arc::clone(&supervisor));
            supervisor
        });
        let mut profiler = Profiler::attach_with_sink(config, env, monitor, gpu, sink);
        profiler.telemetry = telemetry;
        profiler.supervisor = supervisor;
        profiler.journal = journal;
        profiler
    }

    /// Attaches a profiler delivering events to a caller-provided sink
    /// (custom aggregation pipelines, instrumented sinks in tests).
    pub fn attach_with_sink(
        config: ProfilerConfig,
        env: &RuntimeEnv,
        monitor: &Arc<DlMonitor>,
        gpu: &Arc<GpuRuntime>,
        sink: Arc<dyn EventSink>,
    ) -> Profiler {
        monitor.set_sources(config.sources);
        monitor.set_cache_enabled(config.cache_enabled);

        let inner = Arc::new(Inner {
            monitor: Arc::clone(monitor),
            sink,
            launches: AtomicU64::new(0),
            cpu_samples: AtomicU64::new(0),
        });

        let mut monitor_regs = Vec::new();

        if config.gpu_metrics {
            gpu.set_buffer_capacity(config.activity_buffer_capacity);
            gpu.set_sampling(config.instruction_sampling);

            // Launch-site interception: bind correlation ids to contexts.
            let me = Arc::clone(&inner);
            monitor_regs.push(monitor.callback_register(Domain::Gpu, move |event| {
                if let DlEvent::Gpu(gpu_event) = event {
                    if gpu_event.data.site != CallbackSite::Enter {
                        return;
                    }
                    match gpu_event.data.api {
                        ApiKind::LaunchKernel | ApiKind::MemcpyAsync | ApiKind::MemAlloc => {}
                        _ => return,
                    }
                    let path = me.monitor.callpath_for_gpu(gpu_event);
                    // Hand the freshly built path over by value: the
                    // async sink enqueues it without a clone.
                    me.sink
                        .gpu_launch_owned(&gpu_event.origin(), path, gpu_event.data.api);
                    if gpu_event.data.api == ApiKind::LaunchKernel {
                        me.launches.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));

            // Asynchronous activity delivery (buffer-completed handler).
            // The runtime owns the buffer it hands over, so the sink
            // takes it by value (asynchronous sinks route it into queue
            // messages without cloning a single record).
            let me = Arc::clone(&inner);
            gpu.set_activity_handler(move |batch| {
                me.sink.activity_batch_owned(batch);
            });
        }

        // CPU sampling (sigaction / perf-event substitutes).
        let mut sampler_ids = Vec::new();
        let cpu_sampler = |kind: SampleKind, metric: MetricKind, interval: u64| {
            let me = Arc::clone(&inner);
            env.samplers()
                .register(kind, interval, move |thread, event| {
                    let path = me.monitor.callpath_get(thread);
                    let origin = EventOrigin {
                        tid: Some(thread.tid()),
                        ..EventOrigin::default()
                    };
                    me.sink.cpu_sample_owned(
                        &origin,
                        path,
                        metric,
                        (event.count * event.interval) as f64,
                    );
                    me.cpu_samples.fetch_add(event.count, Ordering::Relaxed);
                })
        };
        if let Some(interval) = config.cpu_time_interval {
            sampler_ids.push(cpu_sampler(
                SampleKind::CpuTime,
                MetricKind::CpuTime,
                interval.as_nanos(),
            ));
        }
        if let Some(interval) = config.real_time_interval {
            sampler_ids.push(cpu_sampler(
                SampleKind::RealTime,
                MetricKind::RealTime,
                interval.as_nanos(),
            ));
        }
        if let Some(period) = config.hw_counter_period {
            sampler_ids.push(cpu_sampler(
                SampleKind::HwInstructions,
                MetricKind::HwInstructions,
                period,
            ));
            sampler_ids.push(cpu_sampler(
                SampleKind::HwCacheMisses,
                MetricKind::HwCacheMisses,
                period / 10,
            ));
        }

        Profiler {
            inner,
            env: env.clone(),
            gpu: Arc::clone(gpu),
            monitor_regs,
            sampler_ids,
            started: env.clock().now(),
            telemetry: None,
            supervisor: None,
            journal: None,
        }
    }

    /// Wall-clock time the profiler attached (the run window's start).
    pub fn started(&self) -> TimeNs {
        self.started
    }

    /// Flushes completed GPU activities into the tree (call at
    /// synchronisation points / iteration boundaries). Since this drains
    /// the runtime's whole completed backlog, the sink is told the epoch
    /// is complete so deferred correlation state can retire eagerly.
    pub fn flush(&self) {
        let batch = self.gpu.flush_completed();
        if !batch.is_empty() {
            self.inner.sink.activity_batch_owned(batch);
        }
        self.inner.sink.epoch_complete();
        self.observe_health();
    }

    /// Feeds the current health window into the supervisor (no-op when
    /// either the supervisor or telemetry is off). Runs at every flush
    /// boundary; long-running embedders can also call it directly on
    /// their own cadence.
    pub fn observe_health(&self) {
        if let (Some(supervisor), Some(report)) = (&self.supervisor, self.health_report()) {
            supervisor.observe(&report);
        }
    }

    /// The degradation state machine (`None` unless
    /// [`ProfilerConfig::supervisor`] was configured at attach).
    pub fn supervisor(&self) -> Option<&Arc<Supervisor>> {
        self.supervisor.as_ref()
    }

    /// The live incident journal (`None` when
    /// [`ProfilerConfig::journal`] is off or the sink was
    /// caller-provided). Snapshot it at any point for a causally
    /// ordered record of what the pipeline went through:
    /// `profiler.journal().map(|j| j.snapshot().to_jsonl())` exports
    /// one JSON object per event for log shippers.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// A point-in-time flattening of the incident journal (`None` when
    /// journaling is off): kept events in order plus the conservation
    /// counters. [`finish`](Self::finish) persists exactly this into
    /// the profile database.
    pub fn journal_snapshot(&self) -> Option<deepcontext_core::StoredJournal> {
        self.journal.as_ref().map(|j| j.snapshot())
    }

    /// Current approximate profile memory (shards + correlation state).
    pub fn approx_bytes(&self) -> usize {
        self.inner.sink.approx_bytes()
    }

    /// The self-telemetry handle (`None` when
    /// [`ProfilerConfig::telemetry`] is off or the sink was
    /// caller-provided). Exposes the registry for exports:
    /// `profiler.telemetry().map(|t| t.handle().snapshot().to_prometheus())`.
    pub fn telemetry(&self) -> Option<&Arc<PipelineTelemetry>> {
        self.telemetry.as_ref()
    }

    /// A point-in-time copy of every self-telemetry metric (`None` when
    /// telemetry is off). Feed it to
    /// [`TelemetrySnapshot::to_prometheus`] /
    /// [`TelemetrySnapshot::to_json`] for scraping, or to
    /// [`HealthReport::from_snapshot`] for programmatic decisions.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.telemetry.as_ref().map(|t| t.handle().snapshot())
    }

    /// The profiler's own vital signs — drop rate, queue saturation,
    /// worker utilization, flush/fold latency summaries — over the
    /// window from attach to now (`None` when telemetry is off).
    pub fn health_report(&self) -> Option<HealthReport> {
        self.telemetry
            .as_ref()
            .map(|t| HealthReport::from_snapshot(&t.handle().snapshot(), t.now_ns()))
    }

    /// Activity counters.
    pub fn stats(&self) -> ProfilerStats {
        let counters = self.inner.sink.counters();
        ProfilerStats {
            launches: self.inner.launches.load(Ordering::Relaxed),
            activities: counters.activities,
            cpu_samples: self.inner.cpu_samples.load(Ordering::Relaxed),
            instruction_samples: counters.instruction_samples,
            orphans: counters.orphans,
            peak_bytes: counters.peak_bytes.max(self.inner.sink.approx_bytes()),
            snapshot_merges: counters.snapshot_merges,
            shards_skipped: counters.shards_skipped,
            enqueued_events: counters.enqueued_events,
            dropped_events: counters.dropped_events,
            max_queue_depth: counters.max_queue_depth,
            drain_waits: counters.drain_waits,
            worker_batches: counters.worker_batches,
            worker_events: counters.worker_events,
            producer_flushes: counters.producer_flushes,
            batched_events: counters.batched_events,
            timeline_intervals: counters.timeline_intervals,
            timeline_dropped: counters.timeline_dropped,
            worker_panics: counters.worker_panics,
            poisoned_events: counters.poisoned_events,
        }
    }

    /// Read access to the in-progress tree (analysis previews, tests).
    ///
    /// Served from the sink's incremental snapshot cache: only shards
    /// dirtied since the previous call are re-folded, and the merged tree
    /// is shared with `f` rather than cloned — repeated preview queries
    /// on a large, mostly idle profile cost O(dirty shards), not
    /// O(shards × tree). The cached master lives behind an `Arc` whose
    /// handle is taken under the cache lock and released before `f`
    /// runs, so concurrent `with_cct` readers proceed in parallel on one
    /// shared snapshot (a refresh racing a long-lived reader
    /// copies-on-write and never disturbs the reader's view). The
    /// per-shard trees stay live and keep ingesting throughout.
    pub fn with_cct<R>(&self, f: impl FnOnce(&CallingContextTree) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.inner.sink.with_snapshot(&mut |cct| {
            if let Some(f) = f.take() {
                out = Some(f(cct));
            }
        });
        out.expect("sink ran the snapshot closure")
    }

    /// The recorded timeline, assembled behind the same barriers as a
    /// profile snapshot (`None` when [`ProfilerConfig::timeline`] is
    /// off). Interval context ids index into the tree served by
    /// [`with_cct`](Self::with_cct) at the same quiesce point — pair the
    /// two for context-aware latency analysis:
    ///
    /// ```ignore
    /// profiler.flush();
    /// let timeline = profiler.timeline().expect("timeline enabled");
    /// let report = profiler.with_cct(|cct| {
    ///     analyzer.preview_with_timeline(cct, &timeline)
    /// });
    /// let trace = profiler.with_cct(|cct| timeline.to_chrome_trace(Some(cct)));
    /// ```
    ///
    /// Call before [`finish`](Self::finish) (which consumes the sink's
    /// state); typically right after a [`flush`](Self::flush), so the
    /// timeline covers every completed activity.
    pub fn timeline(&self) -> Option<TimelineSnapshot> {
        self.inner
            .sink
            .timeline_snapshot()
            .map(|snap| snap.with_window(self.started, self.env.clock().now()))
    }

    /// Detaches all collection and returns the finished profile.
    ///
    /// Consumes the sink's cached snapshot (after folding in any shards
    /// still dirty) instead of performing a final full fold. The run's
    /// wall-clock window is stamped into `meta.started` / `meta.ended`,
    /// and the recorded timeline (when enabled) is captured into the
    /// database — so the profile that reaches disk carries everything
    /// needed for postmortem latency analysis.
    pub fn finish(mut self, mut meta: ProfileMeta) -> ProfileDb {
        // Drain anything still buffered.
        let batch = self.gpu.flush_all();
        if !batch.is_empty() {
            self.inner.sink.activity_batch_owned(batch);
        }
        self.inner.sink.epoch_complete();
        self.observe_health();
        let ended = self.env.clock().now();
        // Capture the timeline before finish_snapshot consumes the
        // sink's cached fold state (its context remap depends on it).
        let timeline = self
            .inner
            .sink
            .timeline_snapshot()
            .map(|snap| snap.with_window(self.started, ended).to_stored());
        self.detach();
        meta.started = self.started;
        meta.ended = ended;
        // Embed the run's self-telemetry roll-up into the metadata's
        // free-form pairs: the on-disk format is untouched, header-only
        // `ProfileStore` listings still see the values, and trend queries
        // can track profiler overhead across runs.
        if let Some(telemetry) = &self.telemetry {
            let report =
                HealthReport::from_snapshot(&telemetry.handle().snapshot(), telemetry.now_ns());
            for (key, value) in [
                ("telemetry.window_ns", report.window_ns.to_string()),
                (
                    "telemetry.enqueued_events",
                    report.events_enqueued.to_string(),
                ),
                (
                    "telemetry.dropped_events",
                    report.events_dropped.to_string(),
                ),
                ("telemetry.drop_rate", format!("{:.6}", report.drop_rate)),
                (
                    "telemetry.max_queue_depth",
                    report.max_queue_depth.to_string(),
                ),
                (
                    "telemetry.queue_saturation",
                    format!("{:.6}", report.queue_saturation),
                ),
                (
                    "telemetry.worker_utilization",
                    format!("{:.6}", report.worker_utilization),
                ),
                (
                    "telemetry.flush_p99_ns",
                    report.flush_latency.p99.to_string(),
                ),
                ("telemetry.fold_p99_ns", report.fold_latency.p99.to_string()),
            ] {
                meta.extra.push((key.to_string(), value));
            }
        }
        // Stamp the degradation record: a profile taken under sampled or
        // bypassed ingestion must say so (the analyzer's DegradedRunRule
        // reads these, and estimate consumers rescale by sample_rate).
        if let Some(supervisor) = &self.supervisor {
            let status = supervisor.status();
            for (key, value) in [
                ("supervisor.state", status.state.to_string()),
                ("supervisor.transitions", status.transitions.to_string()),
                (
                    "supervisor.degraded_windows",
                    status.degraded_windows.to_string(),
                ),
                ("supervisor.sample_rate", status.sample_stride.to_string()),
                (
                    "supervisor.sampled_events",
                    status.sampled_events.to_string(),
                ),
                (
                    "supervisor.rejected_events",
                    status.rejected_events.to_string(),
                ),
                (
                    "supervisor.bypassed_events",
                    status.bypassed_events.to_string(),
                ),
            ] {
                meta.extra.push((key.to_string(), value));
            }
            // The first departure from Healthy, as a journal-clock
            // timestamp: header-only listings can spot a run that
            // degraded (and when) without loading the journal itself.
            if let Some(ns) = supervisor.first_degraded_ns() {
                meta.extra
                    .push(("supervisor.first_degraded_ns".to_string(), ns.to_string()));
            }
        }
        // Flatten the incident journal into the database and summarize
        // it in the header: `journal.sites` lets `ProfileStore` listings
        // filter runs by incident kind from metadata alone.
        let journal = self.journal.as_ref().map(|j| j.snapshot());
        if let Some(journal) = &journal {
            for (key, value) in [
                ("journal.events", journal.event_count().to_string()),
                ("journal.evicted", journal.evicted.to_string()),
                ("journal.sites", journal.site_summary().join(",")),
            ] {
                meta.extra.push((key.to_string(), value));
            }
        }
        let mut db = ProfileDb::new(meta, self.inner.sink.finish_snapshot());
        db.set_timeline(timeline);
        db.set_journal(journal);
        db
    }

    fn detach(&mut self) {
        for id in self.monitor_regs.drain(..) {
            self.inner.monitor.callback_unregister(id);
        }
        for id in self.sampler_ids.drain(..) {
            self.env.samplers().unregister(id);
        }
        self.gpu.set_sampling(None);
        self.gpu.set_activity_handler(|_| {});
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.detach();
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcontext_core::{FrameKind, StallReason, ThreadRole};
    use dl_framework::{EagerEngine, FrameworkCore, Op, OpKind, TensorMeta};
    use sim_gpu::{Activity, ActivityKind, CorrelationId, DeviceId, DeviceSpec};
    use sim_runtime::ThreadRegistry;

    struct Rig {
        env: RuntimeEnv,
        gpu: Arc<GpuRuntime>,
        engine: Arc<EagerEngine>,
        monitor: Arc<DlMonitor>,
    }

    fn rig() -> Rig {
        let env = RuntimeEnv::new();
        let gpu = GpuRuntime::new(env.clock().clone(), vec![DeviceSpec::a100_sxm()]);
        let core = FrameworkCore::new(
            env.clone(),
            Arc::clone(&gpu),
            DeviceId(0),
            "/lib/libtorch_cpu.so",
            "libtorch_cuda.so",
            TimeNs(3_000),
        );
        let engine = EagerEngine::new(Arc::clone(&core));
        let monitor = DlMonitor::init(&env, deepcontext_core::Interner::new());
        monitor.attach_framework(core.callbacks());
        monitor.attach_gpu(&gpu);
        Rig {
            env,
            gpu,
            engine,
            monitor,
        }
    }

    fn run_relu(rig: &Rig, n: usize) {
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        let core = Arc::clone(rig.engine.core());
        let _py = core.python().frame(&main, "train.py", 7, "step");
        for _ in 0..n {
            rig.engine
                .op(Op::new(OpKind::Relu), &[TensorMeta::new([1 << 18])])
                .unwrap();
        }
        rig.gpu.synchronize(DeviceId(0)).unwrap();
    }

    #[test]
    fn gpu_time_attributes_to_kernel_context() {
        let rig = rig();
        let profiler =
            Profiler::attach(ProfilerConfig::default(), &rig.env, &rig.monitor, &rig.gpu);
        run_relu(&rig, 5);
        profiler.flush();

        let stats = profiler.stats();
        assert_eq!(stats.launches, 5);
        assert_eq!(stats.activities, 5);

        profiler.with_cct(|cct| {
            assert!(cct.total(MetricKind::GpuTime) > 0.0);
            assert_eq!(
                cct.root_metric(MetricKind::KernelLaunches).unwrap().sum,
                5.0
            );
            // All five launches collapsed into one kernel context.
            let kernels = cct.nodes_of_kind(FrameKind::GpuKernel);
            assert_eq!(kernels.len(), 1);
            let k = kernels[0];
            assert_eq!(cct.metric(k, MetricKind::GpuTime).unwrap().count, 5);
            // Exclusive launch-shape metrics present on the kernel node only.
            assert!(cct.metric(k, MetricKind::Warps).is_some());
            assert!(cct.root_metric(MetricKind::Warps).is_none());
        });
    }

    #[test]
    fn profile_size_is_iteration_independent() {
        let rig = rig();
        let profiler =
            Profiler::attach(ProfilerConfig::default(), &rig.env, &rig.monitor, &rig.gpu);
        run_relu(&rig, 3);
        profiler.flush();
        let nodes_small = profiler.with_cct(|c| c.node_count());
        run_relu(&rig, 50);
        profiler.flush();
        let nodes_large = profiler.with_cct(|c| c.node_count());
        assert_eq!(
            nodes_small, nodes_large,
            "CCT must not grow with iterations"
        );
    }

    #[test]
    fn cpu_sampling_attributes_cpu_time() {
        let rig = rig();
        let config = ProfilerConfig {
            cpu_time_interval: Some(TimeNs::from_us(1)),
            ..ProfilerConfig::default()
        };
        let profiler = Profiler::attach(config, &rig.env, &rig.monitor, &rig.gpu);
        run_relu(&rig, 3);
        profiler.flush();
        let stats = profiler.stats();
        assert!(stats.cpu_samples > 0);
        profiler.with_cct(|cct| {
            assert!(cct.total(MetricKind::CpuTime) > 0.0);
            // CPU time lands under the Python frame.
            let py_nodes = cct.nodes_of_kind(FrameKind::Python);
            assert!(py_nodes
                .iter()
                .any(|n| cct.metric(*n, MetricKind::CpuTime).is_some()));
        });
    }

    #[test]
    fn instruction_sampling_extends_paths_with_pc_frames() {
        let rig = rig();
        let config = ProfilerConfig {
            instruction_sampling: Some(SamplingConfig {
                period: TimeNs(500),
                max_samples_per_kernel: 512,
            }),
            ..ProfilerConfig::default()
        };
        let profiler = Profiler::attach(config, &rig.env, &rig.monitor, &rig.gpu);

        // Cast kernels carry the constant-memory-stall profile.
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        let core = Arc::clone(rig.engine.core());
        let _py = core.python().frame(&main, "llama.py", 69, "rms_norm");
        rig.engine
            .op(
                Op::new(OpKind::Cast).with_target_dtype(dl_framework::DType::F16),
                &[TensorMeta::new([1 << 20])],
            )
            .unwrap();
        rig.gpu.synchronize(DeviceId(0)).unwrap();
        profiler.flush();

        let stats = profiler.stats();
        assert!(stats.instruction_samples > 0);
        profiler.with_cct(|cct| {
            let instrs = cct.nodes_of_kind(FrameKind::Instruction);
            assert!(!instrs.is_empty());
            // Instruction frames hang off the kernel frame.
            for i in &instrs {
                let parent = cct.node(*i).parent().unwrap();
                assert_eq!(cct.node(parent).frame().kind(), FrameKind::GpuKernel);
            }
            let const_stalls = cct.total(MetricKind::Stall(StallReason::ConstantMemory));
            assert!(
                const_stalls > 0.0,
                "cast kernel must show constant-memory stalls"
            );
        });
    }

    #[test]
    fn finish_produces_loadable_profile() {
        let rig = rig();
        let profiler =
            Profiler::attach(ProfilerConfig::default(), &rig.env, &rig.monitor, &rig.gpu);
        run_relu(&rig, 4);
        let db = profiler.finish(ProfileMeta {
            workload: "relu-micro".into(),
            framework: "eager".into(),
            platform: "nvidia-a100".into(),
            iterations: 4,
            ..Default::default()
        });
        assert!(db.cct().total(MetricKind::GpuTime) > 0.0);
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let back = ProfileDb::load(&buf[..]).unwrap();
        assert_eq!(back.meta().workload, "relu-micro");
    }

    #[test]
    fn peak_bytes_is_tracked_and_bounded() {
        let rig = rig();
        let profiler =
            Profiler::attach(ProfilerConfig::default(), &rig.env, &rig.monitor, &rig.gpu);
        run_relu(&rig, 2);
        profiler.flush();
        let after_two = profiler.stats().peak_bytes;
        assert!(after_two > 0);
        run_relu(&rig, 40);
        profiler.flush();
        let after_many = profiler.stats().peak_bytes;
        // Same contexts: peak grows marginally (correlation churn), not
        // linearly with events.
        assert!(after_many < after_two * 3, "{after_many} vs {after_two}");
    }

    #[test]
    fn memcpy_and_malloc_metrics_attribute() {
        let rig = rig();
        let profiler =
            Profiler::attach(ProfilerConfig::default(), &rig.env, &rig.monitor, &rig.gpu);
        let main = rig.env.threads().spawn(ThreadRole::Main);
        let _bind = ThreadRegistry::bind_current(&main);
        rig.gpu.malloc(DeviceId(0), 4096).unwrap();
        rig.gpu
            .memcpy_async(DeviceId(0), sim_gpu::StreamId(0), 1 << 20)
            .unwrap();
        rig.gpu.synchronize(DeviceId(0)).unwrap();
        profiler.flush();
        profiler.with_cct(|cct| {
            assert_eq!(cct.total(MetricKind::GpuAllocBytes), 4096.0);
            assert_eq!(cct.total(MetricKind::MemcpyBytes), (1 << 20) as f64);
            assert!(cct.total(MetricKind::MemcpyTime) > 0.0);
        });
    }

    #[test]
    fn detach_on_drop_stops_collection() {
        let rig = rig();
        {
            let _profiler =
                Profiler::attach(ProfilerConfig::default(), &rig.env, &rig.monitor, &rig.gpu);
        }
        // After drop, launches must not reach a dead profiler (no panic,
        // no stale callbacks firing into freed state).
        run_relu(&rig, 2);
        assert!(rig.env.samplers().is_empty());
    }

    #[test]
    fn single_shard_config_matches_default() {
        // The sharded pipeline is an API-compatible refactor: one shard
        // (the historical single-lock design) and many shards must agree
        // on every aggregate.
        let totals = |shards: usize| {
            let rig = rig();
            let config = ProfilerConfig {
                ingestion_shards: shards,
                ..ProfilerConfig::default()
            };
            let profiler = Profiler::attach(config, &rig.env, &rig.monitor, &rig.gpu);
            run_relu(&rig, 6);
            profiler.flush();
            profiler.with_cct(|cct| {
                (
                    cct.node_count(),
                    cct.total(MetricKind::GpuTime),
                    cct.total(MetricKind::KernelLaunches),
                )
            })
        };
        assert_eq!(totals(1), totals(16));
    }

    #[test]
    fn producer_batching_amortizes_and_matches_unbatched() {
        // Thread-local launch batching is a cost optimization, not a
        // semantic one: profiles and event counts match the unbatched
        // pipeline exactly, while the batching counters prove events
        // actually travelled through per-thread batches.
        let run = |launch_batch: usize| {
            let rig = rig();
            let config = ProfilerConfig {
                pipeline: PipelineConfig {
                    launch_batch,
                    ..PipelineConfig::default()
                },
                ..ProfilerConfig::default()
            };
            let profiler = Profiler::attach(config, &rig.env, &rig.monitor, &rig.gpu);
            run_relu(&rig, 6);
            profiler.flush();
            let stats = profiler.stats();
            let totals = profiler.with_cct(|cct| {
                (
                    cct.node_count(),
                    cct.total(MetricKind::GpuTime),
                    cct.total(MetricKind::KernelLaunches),
                )
            });
            (stats, totals)
        };
        let (unbatched, unbatched_totals) = run(1);
        let (batched, batched_totals) = run(64);
        assert_eq!(unbatched_totals, batched_totals);
        assert_eq!(batched.activities, unbatched.activities);
        assert_eq!(batched.launches, unbatched.launches);
        assert_eq!(
            unbatched.batched_events, 0,
            "launch_batch=1 bypasses the batcher"
        );
        assert!(batched.batched_events > 0, "events flowed through batches");
        assert!(batched.producer_flushes > 0);
        assert!(
            batched.batched_events >= batched.producer_flushes,
            "flushes amortize at least one event each"
        );
    }

    #[test]
    fn async_mode_matches_sync_mode() {
        // The asynchronous pipeline is a scheduling change, not a
        // semantic one: the same workload must produce identical
        // aggregates under both ingestion modes, with nothing dropped
        // under the default Block policy.
        let run = |mode: IngestionMode| {
            let rig = rig();
            let config = ProfilerConfig {
                ingestion_mode: mode,
                ..ProfilerConfig::default()
            };
            let profiler = Profiler::attach(config, &rig.env, &rig.monitor, &rig.gpu);
            run_relu(&rig, 6);
            profiler.flush();
            let stats = profiler.stats();
            let totals = profiler.with_cct(|cct| {
                (
                    cct.node_count(),
                    cct.total(MetricKind::GpuTime),
                    cct.total(MetricKind::KernelLaunches),
                )
            });
            (stats, totals)
        };
        let (sync_stats, sync_totals) = run(IngestionMode::Sync);
        let (async_stats, async_totals) = run(IngestionMode::Async);
        assert_eq!(sync_totals, async_totals);
        assert_eq!(sync_stats.activities, async_stats.activities);
        assert_eq!(sync_stats.launches, async_stats.launches);
        assert_eq!(async_stats.orphans, 0);
        // Pipeline accounting: events flowed through the queues and the
        // Block policy lost none of them.
        assert!(async_stats.enqueued_events > 0);
        assert_eq!(async_stats.dropped_events, 0);
        assert_eq!(async_stats.worker_events, async_stats.enqueued_events);
        assert_eq!(sync_stats.enqueued_events, 0, "sync mode bypasses queues");
    }

    #[test]
    fn async_finish_produces_complete_profile() {
        let rig = rig();
        let config = ProfilerConfig {
            ingestion_mode: IngestionMode::Async,
            ..ProfilerConfig::default()
        };
        let profiler = Profiler::attach(config, &rig.env, &rig.monitor, &rig.gpu);
        run_relu(&rig, 5);
        // No explicit flush: finish itself must drain the pipeline.
        let db = profiler.finish(ProfileMeta {
            workload: "relu-async".into(),
            framework: "eager".into(),
            platform: "nvidia-a100".into(),
            iterations: 5,
            ..Default::default()
        });
        assert_eq!(
            db.cct()
                .root_metric(MetricKind::KernelLaunches)
                .unwrap()
                .sum,
            5.0
        );
        assert_eq!(
            db.cct()
                .metric(db.cct().root(), MetricKind::GpuTime)
                .unwrap()
                .count,
            5
        );
    }

    #[test]
    fn snapshot_cache_knob_trades_memory_for_snapshot_cost() {
        let run = |snapshot_cache: bool| {
            let rig = rig();
            let config = ProfilerConfig {
                ingestion_shards: 16,
                snapshot_cache,
                ..ProfilerConfig::default()
            };
            let profiler = Profiler::attach(config, &rig.env, &rig.monitor, &rig.gpu);
            run_relu(&rig, 6);
            profiler.flush();
            // Open an "analysis session": repeated snapshot reads.
            let totals = profiler.with_cct(|c| (c.node_count(), c.total(MetricKind::GpuTime)));
            assert_eq!(
                totals,
                profiler.with_cct(|c| (c.node_count(), c.total(MetricKind::GpuTime)))
            );
            (totals, profiler.approx_bytes(), profiler.stats())
        };
        let (on_totals, on_bytes, on_stats) = run(true);
        let (off_totals, off_bytes, off_stats) = run(false);
        // Same profile either way.
        assert_eq!(on_totals, off_totals);
        // With the cache on, snapshots hold a merged second copy; off, the
        // resident footprint drops.
        assert!(
            off_bytes < on_bytes,
            "cache-off bytes {off_bytes} must undercut cache-on bytes {on_bytes}"
        );
        assert!(on_stats.snapshot_merges > 0);
        assert_eq!(
            off_stats.snapshot_merges, 0,
            "cache disabled: no incremental folds happen"
        );
    }

    #[test]
    fn warm_snapshots_skip_clean_shards_and_match_a_fresh_fold() {
        let rig = rig();
        let config = ProfilerConfig {
            ingestion_shards: 16,
            ..ProfilerConfig::default()
        };
        let profiler = Profiler::attach(config, &rig.env, &rig.monitor, &rig.gpu);
        run_relu(&rig, 4);
        profiler.flush();

        // Cold snapshot: every shard folded, nothing skipped yet.
        let nodes = profiler.with_cct(|c| c.node_count());
        let cold = profiler.stats();
        assert_eq!(cold.snapshot_merges, 16);
        assert_eq!(cold.shards_skipped, 0);

        // Warm snapshot with no ingestion in between: all shards skipped.
        assert_eq!(profiler.with_cct(|c| c.node_count()), nodes);
        let warm = profiler.stats();
        assert_eq!(warm.snapshot_merges, 16, "no shard re-folded");
        assert_eq!(warm.shards_skipped, 16);

        // More ingestion dirties the touched shards; the cached view keeps
        // aggregating correctly (same contexts, doubled-ish samples).
        run_relu(&rig, 4);
        profiler.flush();
        profiler.with_cct(|cached| {
            assert_eq!(cached.node_count(), nodes);
            assert_eq!(cached.root_metric(MetricKind::GpuTime).unwrap().count, 8);
        });
        let after = profiler.stats();
        assert!(after.snapshot_merges > warm.snapshot_merges);
        assert!(after.shards_skipped > warm.shards_skipped);
    }

    #[test]
    fn finish_consumes_the_cache_with_all_data_present() {
        let rig = rig();
        let profiler =
            Profiler::attach(ProfilerConfig::default(), &rig.env, &rig.monitor, &rig.gpu);
        run_relu(&rig, 3);
        profiler.flush();
        // Prime the cache mid-run, then keep ingesting before finish.
        let mid_total = profiler.with_cct(|c| c.total(MetricKind::GpuTime));
        assert!(mid_total > 0.0);
        run_relu(&rig, 2);
        let db = profiler.finish(ProfileMeta {
            workload: "relu-micro".into(),
            framework: "eager".into(),
            platform: "nvidia-a100".into(),
            iterations: 5,
            ..Default::default()
        });
        // The consumed cache reflects everything, including activities
        // flushed by finish itself after the last with_cct.
        assert_eq!(
            db.cct()
                .root_metric(MetricKind::KernelLaunches)
                .unwrap()
                .sum,
            5.0
        );
        assert_eq!(
            db.cct()
                .metric(db.cct().root(), MetricKind::GpuTime)
                .unwrap()
                .count,
            5
        );
    }

    #[test]
    fn finish_stamps_window_and_persists_the_timeline() {
        let rig = rig();
        let config = ProfilerConfig {
            timeline: TimelineConfig {
                enabled: true,
                ring_capacity: 1024,
            },
            // Pinned off regardless of the DEEPCONTEXT_TELEMETRY matrix:
            // this test counts exact workload intervals, which the
            // self-timeline tracks would add to.
            telemetry: TelemetryConfig::default(),
            ..ProfilerConfig::default()
        };
        let profiler = Profiler::attach(config, &rig.env, &rig.monitor, &rig.gpu);
        let started = profiler.started();
        run_relu(&rig, 4);
        profiler.flush();

        // Live snapshots carry the run window, so leading idle between
        // attach and the first launch is measurable.
        let live = profiler.timeline().expect("timeline enabled");
        let (ws, we) = live.window().expect("window attached");
        assert_eq!(ws, started);
        assert!(we >= ws);

        let db = profiler.finish(ProfileMeta {
            workload: "relu-timeline".into(),
            ..Default::default()
        });
        assert_eq!(db.meta().started, started);
        assert!(db.meta().ended >= db.meta().started);
        let stored = db.timeline().expect("timeline persisted");
        assert_eq!(stored.interval_count(), 4);
        assert_eq!(stored.window, Some((db.meta().started, db.meta().ended)));
        // Interval names resolve from the captured table, and contexts
        // point into the master tree the db carries.
        for iv in &stored.intervals {
            assert!(stored.name_of(iv.name).is_some());
            let ctx = iv.context.expect("context resolved");
            assert!(ctx.index() < db.cct().node_count());
        }

        // The whole container round-trips through the on-disk format.
        let mut buf = Vec::new();
        db.save(&mut buf).unwrap();
        let back = ProfileDb::load(&buf[..]).unwrap();
        assert_eq!(back.timeline(), db.timeline());
        assert_eq!(back.meta(), db.meta());
    }

    #[test]
    fn supervised_degraded_run_samples_and_stamps_meta() {
        let rig = rig();
        let config = ProfilerConfig {
            telemetry: TelemetryConfig::enabled(),
            supervisor: Some(SupervisorConfig {
                sample_stride: 4,
                ..SupervisorConfig::default()
            }),
            ..ProfilerConfig::default()
        };
        let profiler = Profiler::attach(config, &rig.env, &rig.monitor, &rig.gpu);
        let supervisor = Arc::clone(profiler.supervisor().expect("supervisor configured"));
        // A healthy supervised run admits everything.
        run_relu(&rig, 8);
        profiler.flush();
        assert_eq!(profiler.stats().launches, 8);
        assert_eq!(profiler.stats().activities, 8);
        assert_eq!(supervisor.state(), SupervisorState::Healthy);

        // Degrade and run again: only sampled correlations are ingested,
        // coherently (no sampling-induced orphans), and the stamps in
        // the finished profile record exactly how to rescale.
        supervisor.force_state(SupervisorState::Degraded);
        run_relu(&rig, 8);
        let db = profiler.finish(ProfileMeta {
            workload: "relu-degraded".into(),
            ..Default::default()
        });
        let extra = |key: &str| {
            db.meta()
                .extra
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("meta key {key} missing"))
        };
        assert_eq!(extra("supervisor.state"), "1");
        assert_eq!(extra("supervisor.sample_rate"), "4");
        assert!(extra("supervisor.transitions").parse::<u64>().unwrap() >= 1);
        let sampled = extra("supervisor.sampled_events").parse::<u64>().unwrap();
        let rejected = extra("supervisor.rejected_events").parse::<u64>().unwrap();
        assert!(sampled > 0, "some events must pass the 1-in-4 sampler");
        assert!(rejected > sampled, "a stride of 4 rejects most events");
        // The full first phase plus the sampled second phase landed; no
        // record resolved against a missing binding.
        let launches = db
            .cct()
            .root_metric(MetricKind::KernelLaunches)
            .unwrap()
            .sum;
        assert!((8.0..16.0).contains(&launches), "got {launches}");
        assert!(db.cct().total(MetricKind::GpuTime) > 0.0);
    }

    #[test]
    fn orphaned_activities_are_counted_and_kept() {
        let rig = rig();
        let profiler =
            Profiler::attach(ProfilerConfig::default(), &rig.env, &rig.monitor, &rig.gpu);
        run_relu(&rig, 1);
        profiler.flush();
        assert_eq!(profiler.stats().orphans, 0);

        // Fabricate a record whose correlation the profiler never saw.
        let orphan = Activity {
            correlation_id: CorrelationId(u64::MAX),
            device: DeviceId(0),
            kind: ActivityKind::Malloc {
                bytes: 512,
                at: TimeNs(1),
            },
        };
        profiler
            .inner
            .sink
            .activity_batch(std::slice::from_ref(&orphan));
        let stats = profiler.stats();
        assert_eq!(stats.orphans, 1);
        // The data is attributed under the catch-all, not dropped.
        profiler.with_cct(|cct| {
            assert_eq!(cct.total(MetricKind::GpuAllocBytes), 512.0);
        });
    }
}
